//! A [`Runtime`] backed by the `psim-sched` job scheduler.
//!
//! Every kernel call becomes a scheduled job: it is submitted to a
//! [`JobQueue`] under this runtime's tenant and class, dispatched by a
//! channel-sharded [`ShardExecutor`], and its simulated service time is
//! folded into the usual [`Breakdown`]. Applications (CG, BiCGSTAB,
//! PageRank, …) run completely unchanged — they just execute through the
//! scheduler's service path, and the per-job service log
//! ([`SchedRuntime::service_log`]) is available afterwards for
//! latency/queue-wait analysis.
//!
//! The [`Runtime`] trait passes matrices by reference, so this adapter
//! clones each operand into an [`Arc`] at submission. Long-lived workloads
//! that want zero-copy operand sharing should register matrices in a
//! [`psim_sched::MatrixStore`] and build jobs directly instead.

use std::sync::Arc;

use psim_kernels::PimDevice;
use psim_sched::{
    CompletedJob, ExecutorConfig, JobClass, JobKind, JobQueue, JobSpec, JobValue, SchedError,
    ShardExecutor,
};
use psim_sparse::triangular::UnitTriangular;
use psim_sparse::{Coo, Precision};
use psyncpim_core::isa::BinaryOp;

use crate::runtime::{Breakdown, Runtime};

/// Which [`Breakdown`] bucket a job's service time lands in.
#[derive(Clone, Copy)]
enum Family {
    Spmv,
    Sptrsv,
    Vector,
}

/// Runtime executing every kernel through the job scheduler.
#[derive(Debug)]
pub struct SchedRuntime {
    queue: JobQueue,
    exec: ShardExecutor,
    tenant: String,
    class: JobClass,
    precision: Precision,
    times: Breakdown,
    log: Vec<CompletedJob>,
}

impl SchedRuntime {
    /// Runtime on `device` split into `shards` channel shards.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadShardSplit`] if `shards` does not divide the
    /// device's pseudo-channel count.
    pub fn new(device: PimDevice, shards: usize, precision: Precision) -> Result<Self, SchedError> {
        Ok(SchedRuntime {
            queue: JobQueue::bounded(64),
            exec: ShardExecutor::new(ExecutorConfig::sharded(device, shards))?,
            tenant: "app".to_string(),
            class: JobClass::Batch,
            precision,
            times: Breakdown::default(),
            log: Vec::new(),
        })
    }

    /// Attribute subsequent jobs to a tenant/class (service accounting
    /// only; a single runtime is one submitter).
    #[must_use]
    pub fn with_identity(mut self, tenant: &str, class: JobClass) -> Self {
        self.tenant = tenant.to_string();
        self.class = class;
        self
    }

    /// Per-job service records accumulated so far (submission order).
    #[must_use]
    pub fn service_log(&self) -> &[CompletedJob] {
        &self.log
    }

    fn run_job(&mut self, kind: JobKind, family: Family) -> JobValue {
        let spec = JobSpec {
            tenant: self.tenant.clone(),
            class: self.class,
            precision: self.precision,
            kind,
            arrival_s: 0.0,
        };
        self.queue.submit(spec).expect("queue open and sized");
        let mut report = self
            .exec
            .drain_and_run(&self.queue)
            .expect("scheduled kernel");
        let job = report.jobs.pop().expect("one job per call");
        match family {
            Family::Spmv => self.times.spmv_s += job.service_s,
            Family::Sptrsv => self.times.sptrsv_s += job.service_s,
            Family::Vector => self.times.vector_s += job.service_s,
        }
        let value = job.value.clone();
        self.log.push(job);
        value
    }

    fn expect_vector(value: JobValue) -> Vec<f64> {
        match value {
            JobValue::Vector(v) => v,
            JobValue::Scalar(_) => unreachable!("vector kernel returned scalar"),
        }
    }

    fn expect_scalar(value: &JobValue) -> f64 {
        match value {
            JobValue::Scalar(s) => *s,
            JobValue::Vector(_) => unreachable!("scalar kernel returned vector"),
        }
    }
}

impl Runtime for SchedRuntime {
    fn spmv(&mut self, a: &Coo, x: &[f64]) -> Vec<f64> {
        let kind = JobKind::spmv(Arc::new(a.clone()), x.to_vec());
        Self::expect_vector(self.run_job(kind, Family::Spmv))
    }

    fn spmv_semiring(&mut self, a: &Coo, x: &[f64], mul: BinaryOp, acc: BinaryOp) -> Vec<f64> {
        let kind = JobKind::Spmv {
            a: Arc::new(a.clone()),
            x: x.to_vec(),
            mul,
            acc,
        };
        Self::expect_vector(self.run_job(kind, Family::Spmv))
    }

    fn sptrsv(&mut self, t: &UnitTriangular, b: &[f64]) -> Vec<f64> {
        let kind = JobKind::Sptrsv {
            t: Arc::new(t.clone()),
            b: b.to_vec(),
        };
        Self::expect_vector(self.run_job(kind, Family::Sptrsv))
    }

    fn axpy(&mut self, a: f64, x: &[f64], y: &mut Vec<f64>) {
        let kind = JobKind::Axpy {
            alpha: a,
            x: x.to_vec(),
            y: y.clone(),
        };
        *y = Self::expect_vector(self.run_job(kind, Family::Vector));
    }

    fn scal(&mut self, a: f64, x: &mut Vec<f64>) {
        let kind = JobKind::Scal {
            alpha: a,
            x: x.clone(),
        };
        *x = Self::expect_vector(self.run_job(kind, Family::Vector));
    }

    fn vv(&mut self, x: &[f64], y: &[f64], op: BinaryOp) -> Vec<f64> {
        let kind = JobKind::Vv {
            x: x.to_vec(),
            y: y.to_vec(),
            op,
        };
        Self::expect_vector(self.run_job(kind, Family::Vector))
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        let kind = JobKind::Dot {
            x: x.to_vec(),
            y: y.to_vec(),
        };
        Self::expect_scalar(&self.run_job(kind, Family::Vector))
    }

    fn norm2(&mut self, x: &[f64]) -> f64 {
        let kind = JobKind::Norm2 { x: x.to_vec() };
        Self::expect_scalar(&self.run_job(kind, Family::Vector))
    }

    fn breakdown(&self) -> Breakdown {
        self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;
    use crate::runtime::PimRuntime;
    use psim_sparse::gen;

    #[test]
    fn sched_runtime_matches_pim_runtime_results() {
        let a = gen::rmat(48, 4, 21);
        let x = gen::dense_vector(48, 3);
        let mut direct = PimRuntime::new(PimDevice::tiny(2), Precision::Fp64);
        let mut sched = SchedRuntime::new(PimDevice::tiny(2), 1, Precision::Fp64).unwrap();
        // One shard over the same device: identical kernels, identical
        // results, and the service log records each call.
        assert_eq!(direct.spmv(&a, &x), sched.spmv(&a, &x));
        assert_eq!(direct.dot(&x, &x), sched.dot(&x, &x));
        let mut y1 = x.clone();
        let mut y2 = x.clone();
        direct.axpy(2.0, &x, &mut y1);
        sched.axpy(2.0, &x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(sched.service_log().len(), 3);
        assert!(sched.breakdown().spmv_s > 0.0);
        assert!(sched.breakdown().vector_s > 0.0);
    }

    #[test]
    fn pagerank_runs_unchanged_through_the_scheduler() {
        let g = gen::rmat(64, 4, 44).symmetrized();
        let mut pim = PimRuntime::new(PimDevice::tiny(2), Precision::Fp64);
        let mut sched = SchedRuntime::new(PimDevice::tiny(2), 2, Precision::Fp64).unwrap();
        let (r_pim, _) = pagerank::pagerank(&mut pim, &g, 1e-9, 40);
        let (r_sched, run) = pagerank::pagerank(&mut sched, &g, 1e-9, 40);
        // A 2-shard device is a smaller device per job, but results must
        // still agree with the whole-device run to solver tolerance.
        let drift = r_pim
            .iter()
            .zip(&r_sched)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 1e-7, "rank drift {drift}");
        assert!(run.breakdown.spmv_s > 0.0);
        assert!(!sched.service_log().is_empty());
    }
}
