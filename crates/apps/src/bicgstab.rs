//! Preconditioned BiCGStab (P-BCGS, paper Table II) for general square
//! systems — the second SpTRSV-major linear solver of the evaluation.

use crate::cg::{apply_precond, SolveResult};
use crate::runtime::{AppRun, Runtime};
use psim_sparse::ildu::Ildu;
use psim_sparse::Coo;
use psyncpim_core::isa::BinaryOp;

/// P-BiCGStab: solve `A x = b` to relative tolerance `tol` within
/// `max_iters` iterations, right-preconditioned with ILDU.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.nrows()`.
pub fn pbicgstab<R: Runtime>(
    rt: &mut R,
    a: &Coo,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "matrix must be square");
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = a.nrows();
    let before = rt.breakdown();

    let f = Ildu::factor(a).expect("square matrix");
    let inv_d = f.inv_d.clone();

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let b_norm = rt.norm2(b).max(f64::MIN_POSITIVE);
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut iterations = 0usize;
    let mut converged = false;
    let mut res_norm = rt.norm2(&r);

    for _ in 0..max_iters {
        iterations += 1;
        let rho_new = rt.dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        rt.axpy(-omega, &v.clone(), &mut p);
        rt.scal(beta, &mut p);
        p = rt.vv(&p, &r, BinaryOp::Add);
        // p_hat = M^-1 p ; v = A p_hat
        let p_hat = apply_precond(rt, &f, &inv_d, &p);
        v = rt.spmv(a, &p_hat);
        let denom = rt.dot(&r_hat, &v);
        if denom.abs() < 1e-300 {
            break;
        }
        alpha = rho / denom;
        // s = r - alpha v
        let mut s = r.clone();
        rt.axpy(-alpha, &v, &mut s);
        let s_norm = rt.norm2(&s);
        if s_norm / b_norm < tol {
            rt.axpy(alpha, &p_hat, &mut x);
            res_norm = s_norm;
            converged = true;
            break;
        }
        // s_hat = M^-1 s ; t = A s_hat
        let s_hat = apply_precond(rt, &f, &inv_d, &s);
        let t = rt.spmv(a, &s_hat);
        let tt = rt.dot(&t, &t);
        if tt.abs() < 1e-300 {
            break;
        }
        omega = rt.dot(&t, &s) / tt;
        // x += alpha p_hat + omega s_hat
        rt.axpy(alpha, &p_hat, &mut x);
        rt.axpy(omega, &s_hat, &mut x);
        // r = s - omega t
        r = s;
        rt.axpy(-omega, &t, &mut r);
        res_norm = rt.norm2(&r);
        if res_norm / b_norm < tol {
            converged = true;
            break;
        }
        if omega.abs() < 1e-300 {
            break;
        }
    }

    let breakdown = before.delta(&rt.breakdown());
    SolveResult {
        x,
        residual: res_norm / b_norm,
        converged,
        run: AppRun {
            breakdown,
            iterations,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuRuntime, GpuStack};
    use psim_baselines::GpuModel;
    use psim_sparse::{gen, ildu};

    #[test]
    fn converges_on_nonsymmetric_system() {
        // Diagonally dominant but not symmetric: SPD base + skew noise.
        let base = gen::rmat_seeded(100, 4, 6, 31);
        let mut a = ildu::make_spd(&base);
        let skew = gen::rmat_seeded(100, 2, 7, 32);
        for e in skew.iter() {
            if e.row != e.col {
                a.push(e.row, e.col, 0.05 * e.val);
            }
        }
        a.coalesce();
        let x_true = gen::dense_vector(100, 11);
        let b = a.spmv(&x_true);
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::Cuda);
        let res = pbicgstab(&mut rt, &a, &b, 1e-10, 300);
        assert!(res.converged, "residual {}", res.residual);
        for (g, w) in res.x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
        assert!(res.run.breakdown.sptrsv_s > 0.0);
        assert!(res.run.breakdown.vector_s > 0.0);
    }

    #[test]
    fn solves_spd_system_too() {
        let base = gen::rmat_seeded(80, 4, 9, 41);
        let a = ildu::make_spd(&base);
        let b = vec![1.0; 80];
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::Cuda);
        let res = pbicgstab(&mut rt, &a, &b, 1e-9, 200);
        assert!(res.converged);
        // Check A x ≈ b.
        let ax = a.spmv(&res.x);
        for (g, w) in ax.iter().zip(&b) {
            assert!((g - w).abs() < 1e-6);
        }
    }
}
