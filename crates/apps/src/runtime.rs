//! Device abstraction for the real-world benchmarks.
//!
//! An application is written once against [`Runtime`] and runs on either
//! the simulated pSyncPIM device ([`PimRuntime`] — kernels actually execute
//! on the PU interpreter) or the calibrated GPU model ([`GpuRuntime`] —
//! results computed with reference kernels, times from the roofline model;
//! graph applications use GraphBLAST-overhead costing and linear solvers
//! plain CUDA costing, matching the paper's §VII-A methodology).
//!
//! Each runtime accumulates a per-kernel-family time [`Breakdown`] — the
//! data behind the paper's Figures 2 and 12.

use psim_baselines::GpuModel;
use psim_kernels::blas1::Blas1Pim;
use psim_kernels::{PimDevice, SpmvPim, SptrsvPim};
use psim_sparse::triangular::UnitTriangular;
use psim_sparse::{dense, Coo, LevelSchedule, Precision};
use psyncpim_core::isa::BinaryOp;
use serde::{Deserialize, Serialize};

/// Accumulated kernel-family times in seconds (Figures 2 and 12).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// SpMV kernels.
    pub spmv_s: f64,
    /// SpTRSV kernels.
    pub sptrsv_s: f64,
    /// Level-1 vector kernels.
    pub vector_s: f64,
    /// SpGEMM kernels (TC only).
    pub spgemm_s: f64,
}

impl Breakdown {
    /// Total seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.spmv_s + self.sptrsv_s + self.vector_s + self.spgemm_s
    }

    /// Fractions in `[spmv, sptrsv, vector, spgemm]` order; all zero for
    /// an empty breakdown.
    #[must_use]
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_s();
        if t <= 0.0 {
            return [0.0; 4];
        }
        [
            self.spmv_s / t,
            self.sptrsv_s / t,
            self.vector_s / t,
            self.spgemm_s / t,
        ]
    }

    /// Difference between two snapshots (`later - self`).
    #[must_use]
    pub fn delta(&self, later: &Breakdown) -> Breakdown {
        Breakdown {
            spmv_s: later.spmv_s - self.spmv_s,
            sptrsv_s: later.sptrsv_s - self.sptrsv_s,
            vector_s: later.vector_s - self.vector_s,
            spgemm_s: later.spgemm_s - self.spgemm_s,
        }
    }
}

/// The kernel interface applications are written against.
pub trait Runtime {
    /// `y = A x` over the arithmetic semiring.
    fn spmv(&mut self, a: &Coo, x: &[f64]) -> Vec<f64>;
    /// `y = A x` over an arbitrary `(mul, acc)` semiring (graph kernels).
    fn spmv_semiring(&mut self, a: &Coo, x: &[f64], mul: BinaryOp, acc: BinaryOp) -> Vec<f64>;
    /// Solve `T x = b` for a unit triangular `T`.
    fn sptrsv(&mut self, t: &UnitTriangular, b: &[f64]) -> Vec<f64>;
    /// `y <- a x + y`.
    fn axpy(&mut self, a: f64, x: &[f64], y: &mut Vec<f64>);
    /// `x <- a x`.
    fn scal(&mut self, a: f64, x: &mut Vec<f64>);
    /// Element-wise `z = x (op) y`.
    fn vv(&mut self, x: &[f64], y: &[f64], op: BinaryOp) -> Vec<f64>;
    /// Dot product.
    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64;
    /// Euclidean norm.
    fn norm2(&mut self, x: &[f64]) -> f64;
    /// Snapshot of accumulated kernel times.
    fn breakdown(&self) -> Breakdown;
}

/// Runtime executing every kernel on the simulated pSyncPIM device.
#[derive(Debug, Clone)]
pub struct PimRuntime {
    device: PimDevice,
    precision: Precision,
    times: Breakdown,
}

impl PimRuntime {
    /// Runtime on a device at a precision.
    #[must_use]
    pub fn new(device: PimDevice, precision: Precision) -> Self {
        PimRuntime {
            device,
            precision,
            times: Breakdown::default(),
        }
    }

    fn blas(&self) -> Blas1Pim {
        Blas1Pim::new(self.device.clone(), self.precision)
    }
}

impl Runtime for PimRuntime {
    fn spmv(&mut self, a: &Coo, x: &[f64]) -> Vec<f64> {
        let r = SpmvPim::new(self.device.clone(), self.precision)
            .run(a, x)
            .expect("pim spmv");
        self.times.spmv_s += r.run.total_s();
        r.y
    }

    fn spmv_semiring(&mut self, a: &Coo, x: &[f64], mul: BinaryOp, acc: BinaryOp) -> Vec<f64> {
        let r = SpmvPim::with_semiring(self.device.clone(), self.precision, mul, acc)
            .run(a, x)
            .expect("pim semiring spmv");
        self.times.spmv_s += r.run.total_s();
        r.y
    }

    fn sptrsv(&mut self, t: &UnitTriangular, b: &[f64]) -> Vec<f64> {
        let mut solver = SptrsvPim::new(self.device.clone());
        solver.precision = self.precision;
        let r = solver.run(t, b).expect("pim sptrsv");
        self.times.sptrsv_s += r.run.total_s();
        r.x
    }

    fn axpy(&mut self, a: f64, x: &[f64], y: &mut Vec<f64>) {
        let r = self.blas().daxpy(a, x, y).expect("pim daxpy");
        self.times.vector_s += r.run.total_s();
        *y = r.v;
    }

    fn scal(&mut self, a: f64, x: &mut Vec<f64>) {
        let r = self.blas().dscal(a, x).expect("pim dscal");
        self.times.vector_s += r.run.total_s();
        *x = r.v;
    }

    fn vv(&mut self, x: &[f64], y: &[f64], op: BinaryOp) -> Vec<f64> {
        let r = self.blas().dvdv(x, y, op).expect("pim dvdv");
        self.times.vector_s += r.run.total_s();
        r.v
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        let r = self.blas().ddot(x, y).expect("pim ddot");
        self.times.vector_s += r.run.total_s();
        r.s
    }

    fn norm2(&mut self, x: &[f64]) -> f64 {
        let r = self.blas().dnrm2(x).expect("pim dnrm2");
        self.times.vector_s += r.run.total_s();
        r.s
    }

    fn breakdown(&self) -> Breakdown {
        self.times
    }
}

/// Which GPU software stack a kernel family is costed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuStack {
    /// Plain CUDA/cuSPARSE (linear system solvers).
    Cuda,
    /// GraphBLAST (graph applications) — large per-op overheads.
    GraphBlast,
}

/// Runtime computing results with reference kernels and charging the
/// calibrated GPU model's time.
#[derive(Debug, Clone)]
pub struct GpuRuntime {
    model: GpuModel,
    stack: GpuStack,
    precision: Precision,
    times: Breakdown,
}

impl GpuRuntime {
    /// Runtime over a GPU model with the given software stack.
    #[must_use]
    pub fn new(model: GpuModel, stack: GpuStack) -> Self {
        GpuRuntime {
            model,
            stack,
            precision: Precision::Fp64,
            times: Breakdown::default(),
        }
    }

    fn charge_vector(&mut self, n: usize, streams: usize) {
        let t = match self.stack {
            GpuStack::Cuda => self.model.vector_op_seconds(n, streams, self.precision),
            GpuStack::GraphBlast => self.model.graphblast_op_seconds(n, streams, self.precision),
        };
        self.times.vector_s += t;
    }
}

impl Runtime for GpuRuntime {
    fn spmv(&mut self, a: &Coo, x: &[f64]) -> Vec<f64> {
        let t = match self.stack {
            GpuStack::Cuda => {
                self.model
                    .spmv_seconds(a.nnz(), a.nrows(), a.ncols(), self.precision)
            }
            GpuStack::GraphBlast => {
                self.model
                    .graphblast_spmv_seconds(a.nnz(), a.nrows(), a.ncols(), self.precision)
            }
        };
        self.times.spmv_s += t;
        a.spmv(x)
    }

    fn spmv_semiring(&mut self, a: &Coo, x: &[f64], mul: BinaryOp, acc: BinaryOp) -> Vec<f64> {
        let t = match self.stack {
            GpuStack::Cuda => {
                self.model
                    .spmv_seconds(a.nnz(), a.nrows(), a.ncols(), self.precision)
            }
            GpuStack::GraphBlast => {
                self.model
                    .graphblast_spmv_seconds(a.nnz(), a.nrows(), a.ncols(), self.precision)
            }
        };
        self.times.spmv_s += t;
        // Reference semiring SpMV.
        let mut y = vec![acc.identity(); a.nrows()];
        for e in a.iter() {
            let prod = mul.apply(e.val, x[e.col as usize]);
            y[e.row as usize] = acc.apply(prod, y[e.row as usize]);
        }
        y
    }

    fn sptrsv(&mut self, t: &UnitTriangular, b: &[f64]) -> Vec<f64> {
        let sched = LevelSchedule::analyze(t);
        self.times.sptrsv_s += self
            .model
            .sptrsv_seconds(t.nnz(), t.dim(), &sched, self.precision);
        t.solve_colwise(b).expect("reference solve")
    }

    fn axpy(&mut self, a: f64, x: &[f64], y: &mut Vec<f64>) {
        self.charge_vector(x.len(), 3);
        dense::axpy(a, x, y);
    }

    fn scal(&mut self, a: f64, x: &mut Vec<f64>) {
        self.charge_vector(x.len(), 2);
        dense::scal(a, x);
    }

    fn vv(&mut self, x: &[f64], y: &[f64], op: BinaryOp) -> Vec<f64> {
        self.charge_vector(x.len(), 3);
        x.iter().zip(y).map(|(&a, &b)| op.apply(a, b)).collect()
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        self.charge_vector(x.len(), 2);
        dense::dot(x, y)
    }

    fn norm2(&mut self, x: &[f64]) -> f64 {
        self.charge_vector(x.len(), 2);
        dense::nrm2(x)
    }

    fn breakdown(&self) -> Breakdown {
        self.times
    }
}

/// Result wrapper every application returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Per-kernel-family times of this run.
    pub breakdown: Breakdown,
    /// Outer iterations performed.
    pub iterations: usize,
}

impl AppRun {
    /// Total seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.breakdown.total_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::gen;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = Breakdown {
            spmv_s: 1.0,
            sptrsv_s: 2.0,
            vector_s: 3.0,
            spgemm_s: 4.0,
        };
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(Breakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn gpu_runtime_accumulates_and_computes() {
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::Cuda);
        let a = gen::rmat(64, 4, 1);
        let x = vec![1.0; 64];
        let y = rt.spmv(&a, &x);
        assert_eq!(y, a.spmv(&x));
        let mut z = vec![0.0; 64];
        rt.axpy(2.0, &y, &mut z);
        let n = rt.norm2(&z);
        assert!(n > 0.0);
        let b = rt.breakdown();
        assert!(b.spmv_s > 0.0 && b.vector_s > 0.0);
    }

    #[test]
    fn graphblast_stack_costs_more_per_vector_op() {
        let mut cuda = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::Cuda);
        let mut gb = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let x = vec![1.0; 10_000];
        let y = vec![2.0; 10_000];
        let _ = cuda.vv(&x, &y, BinaryOp::Add);
        let _ = gb.vv(&x, &y, BinaryOp::Add);
        assert!(gb.breakdown().vector_s > 3.0 * cuda.breakdown().vector_s);
    }

    #[test]
    fn pim_runtime_runs_kernels_functionally() {
        let mut rt = PimRuntime::new(PimDevice::tiny(1), Precision::Fp64);
        let a = gen::rmat(48, 4, 2);
        let x = gen::dense_vector(48, 1);
        let y = rt.spmv(&a, &x);
        let want = a.spmv(&x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
        let d = rt.dot(&x, &y);
        assert!((d - dense::dot(&x, &y)).abs() < 1e-9);
        assert!(rt.breakdown().total_s() > 0.0);
    }
}

#[cfg(test)]
mod pim_app_tests {
    use super::*;
    use crate::{pagerank, sssp, tc};
    use psim_baselines::SpgemmAccel;
    use psim_kernels::PimDevice;
    use psim_sparse::gen;

    #[test]
    fn pagerank_agrees_between_devices() {
        let g = gen::rmat(80, 4, 44).symmetrized();
        let mut gpu = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let mut pim = PimRuntime::new(PimDevice::tiny(1), Precision::Fp64);
        let (r1, _) = pagerank::pagerank(&mut gpu, &g, 1e-9, 60);
        let (r2, run) = pagerank::pagerank(&mut pim, &g, 1e-9, 60);
        let drift = r1
            .iter()
            .zip(&r2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 1e-7, "rank drift {drift}");
        assert!(run.breakdown.spmv_s > 0.0 && run.breakdown.vector_s > 0.0);
    }

    #[test]
    fn sssp_agrees_between_devices() {
        let g = gen::rmat(64, 4, 45);
        let mut gpu = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let mut pim = PimRuntime::new(PimDevice::tiny(1), Precision::Fp64);
        let (d1, _) = sssp::sssp(&mut gpu, &g, 0);
        let (d2, _) = sssp::sssp(&mut pim, &g, 0);
        for (a, b) in d1.iter().zip(&d2) {
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn tc_pim_backend_counts_match_gpu_backend() {
        let g = gen::rmat(96, 6, 46).symmetrized();
        let (t1, _) = tc::triangle_count(&g, &tc::TcBackend::Gpu(GpuModel::rtx3080()));
        let (t2, run) = tc::triangle_count(
            &g,
            &tc::TcBackend::AccelPlusPim(SpgemmAccel::innersp(), PimDevice::tiny(1)),
        );
        assert_eq!(t1, t2);
        assert!(run.breakdown.spgemm_s > 0.0 && run.breakdown.spmv_s > 0.0);
    }
}
