//! Connected components via min-label propagation (vector-op-dominated on
//! the GPU, Figure 2: "for CC ... vector operations are the primary
//! bottleneck").

use crate::runtime::{AppRun, Runtime};
use psim_sparse::Coo;
use psyncpim_core::isa::BinaryOp;

/// Connected components of the *undirected* graph under `g` (the pattern is
/// symmetrized host-side, as GraphBLAST's CC does). Returns per-vertex
/// component labels (the minimum vertex id in the component).
///
/// Each iteration propagates labels over the `(second, min)` semiring —
/// each vertex adopts the smallest label among itself and its neighbours —
/// plus several element-wise vector ops, until a fixpoint.
///
/// # Panics
///
/// Panics if `g` is not square.
pub fn connected_components<R: Runtime>(rt: &mut R, g: &Coo) -> (Vec<usize>, AppRun) {
    connected_components_bounded(rt, g, g.nrows().max(1))
}

/// [`connected_components`] with an iteration cap (benchmark harnesses cap
/// the propagation rounds on huge-diameter graphs; labels may then be a
/// fixpoint-in-progress).
pub fn connected_components_bounded<R: Runtime>(
    rt: &mut R,
    g: &Coo,
    max_iters: usize,
) -> (Vec<usize>, AppRun) {
    assert_eq!(g.nrows(), g.ncols(), "adjacency must be square");
    let n = g.nrows();
    let sym = g.symmetrized();
    let before = rt.breakdown();

    let mut labels: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut iterations = 0usize;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        // neighbour_min[v] = min over edges (v, u) of labels[u].
        let neighbour_min = rt.spmv_semiring(&sym, &labels, BinaryOp::Second, BinaryOp::Min);
        let next = rt.vv(&labels, &neighbour_min, BinaryOp::Min);
        let diff = rt.vv(&next, &labels, BinaryOp::Sub);
        let changed = rt.norm2(&diff);
        labels = next;
        if changed == 0.0 {
            break;
        }
    }

    let breakdown = before.delta(&rt.breakdown());
    (
        labels.into_iter().map(|l| l as usize).collect(),
        AppRun {
            breakdown,
            iterations,
        },
    )
}

/// Reference union-find CC for verification.
#[must_use]
pub fn cc_reference(g: &Coo) -> Vec<usize> {
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != c {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    let n = g.nrows();
    let mut parent: Vec<usize> = (0..n).collect();
    for e in g.iter() {
        let (a, b) = (
            find(&mut parent, e.row as usize),
            find(&mut parent, e.col as usize),
        );
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    // Label = minimum vertex id in the component.
    let mut label = vec![0usize; n];
    let mut min_of_root = vec![usize::MAX; n];
    for v in 0..n {
        let r = find(&mut parent, v);
        min_of_root[r] = min_of_root[r].min(v);
    }
    for (v, l) in label.iter_mut().enumerate() {
        let r = find(&mut parent, v);
        *l = min_of_root[r];
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuRuntime, GpuStack};
    use psim_baselines::GpuModel;
    use psim_sparse::gen;

    #[test]
    fn matches_union_find() {
        let g = gen::rmat(150, 3, 4);
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (labels, run) = connected_components(&mut rt, &g);
        assert_eq!(labels, cc_reference(&g));
        // CC is vector-op heavy on GraphBLAST (paper Figure 2).
        assert!(run.breakdown.vector_s > run.breakdown.spmv_s * 0.5);
    }

    #[test]
    fn disconnected_components_keep_distinct_labels() {
        let mut g = Coo::new(6, 6);
        g.push(0, 1, 1.0);
        g.push(2, 3, 1.0);
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (labels, _) = connected_components(&mut rt, &g);
        assert_eq!(labels, vec![0, 0, 2, 2, 4, 5]);
    }
}
