//! Single-source shortest paths via Bellman-Ford relaxation over the
//! min-plus semiring (vector-op heavy on GPU, Figure 2).

use crate::runtime::{AppRun, Runtime};
use psim_sparse::Coo;
use psyncpim_core::isa::BinaryOp;

/// SSSP from `source` over the weighted adjacency matrix `g` (entry
/// `(u, v, w)` = edge `u → v` of weight `w ≥ 0`). Returns distances
/// (`f64::INFINITY` when unreachable).
///
/// Each iteration relaxes `d'[v] = min(d[v], min over (u, v) of
/// (w + d[u]))` — an SpMV over `(+, min)` — until a fixpoint.
///
/// # Panics
///
/// Panics if `g` is not square or `source` out of range.
pub fn sssp<R: Runtime>(rt: &mut R, g: &Coo, source: usize) -> (Vec<f64>, AppRun) {
    sssp_bounded(rt, g, source, g.nrows())
}

/// [`sssp`] with a relaxation-round cap (benchmark harnesses cap the
/// Bellman-Ford rounds on huge-diameter graphs; distances may then be an
/// upper bound).
pub fn sssp_bounded<R: Runtime>(
    rt: &mut R,
    g: &Coo,
    source: usize,
    max_rounds: usize,
) -> (Vec<f64>, AppRun) {
    assert_eq!(g.nrows(), g.ncols(), "adjacency must be square");
    assert!(source < g.nrows());
    let n = g.nrows();
    let gt = g.transpose(); // entries (v, u): in-edges of v
    let before = rt.breakdown();

    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut iterations = 0usize;
    for _ in 0..max_rounds.max(1) {
        iterations += 1;
        let relaxed = rt.spmv_semiring(&gt, &dist, BinaryOp::Add, BinaryOp::Min);
        let next = rt.vv(&dist, &relaxed, BinaryOp::Min);
        // Converged when nothing improved.
        let diff = rt.vv(&dist, &next, BinaryOp::Sub);
        let finite_change = diff
            .iter()
            .any(|&d| d.is_finite() && d != 0.0 || d.is_nan());
        let improved_from_inf = dist
            .iter()
            .zip(&next)
            .any(|(&a, &b)| a.is_infinite() && b.is_finite());
        dist = next;
        if !finite_change && !improved_from_inf {
            break;
        }
    }

    let breakdown = before.delta(&rt.breakdown());
    (
        dist,
        AppRun {
            breakdown,
            iterations,
        },
    )
}

/// Reference Dijkstra for verification (non-negative weights).
#[must_use]
pub fn sssp_reference(g: &Coo, source: usize) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let csr = psim_sparse::Csr::from(g);
    let n = g.nrows();
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((ordered_float(0.0), source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let d = f64::from_bits(d);
        if d > dist[u] {
            continue;
        }
        for (v, w) in csr.row(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((ordered_float(nd), v)));
            }
        }
    }
    dist
}

/// Order-preserving bit pattern for non-negative floats.
fn ordered_float(x: f64) -> u64 {
    x.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuRuntime, GpuStack};
    use psim_baselines::GpuModel;
    use psim_sparse::gen;

    fn weighted_graph(n: usize, deg: usize, salt: u64) -> Coo {
        // rmat values are 1..2, suitable as weights.
        gen::rmat(n, deg, salt)
    }

    #[test]
    fn matches_dijkstra() {
        let g = weighted_graph(120, 4, 6);
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (dist, run) = sssp(&mut rt, &g, 0);
        let want = sssp_reference(&g, 0);
        for (i, (d, w)) in dist.iter().zip(&want).enumerate() {
            if w.is_infinite() {
                assert!(d.is_infinite(), "vertex {i}");
            } else {
                assert!((d - w).abs() < 1e-9, "vertex {i}: {d} vs {w}");
            }
        }
        assert!(run.iterations >= 1);
    }

    #[test]
    fn line_graph_distances() {
        let mut g = Coo::new(5, 5);
        for i in 0..4 {
            g.push(i as u32, i as u32 + 1, 2.0);
        }
        let mut rt = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let (dist, _) = sssp(&mut rt, &g, 0);
        assert_eq!(&dist[..5], &[0.0, 2.0, 4.0, 6.0, 8.0]);
    }
}
