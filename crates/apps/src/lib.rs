//! Real-world benchmark applications (paper Table II).
//!
//! Five graph applications — [`bfs`], [`cc`], [`pagerank`], [`sssp`],
//! [`tc`] — and two preconditioned linear solvers — [`cg`] (P-CG) and
//! [`bicgstab`] (P-BiCGStab) — written once against the [`runtime::Runtime`]
//! abstraction so the same algorithm runs on the simulated pSyncPIM device
//! or the calibrated GPU model, producing both results and the per-kernel
//! time breakdowns of Figures 2, 11 and 12.

pub mod bfs;
pub mod bicgstab;
pub mod cc;
pub mod cg;
pub mod pagerank;
pub mod runtime;
pub mod sched_runtime;
pub mod sssp;
pub mod tc;

pub use runtime::{AppRun, Breakdown, GpuRuntime, GpuStack, PimRuntime, Runtime};
pub use sched_runtime::SchedRuntime;
