//! Structural statistics of sparse matrices.
//!
//! The quantities pSyncPIM's behaviour depends on (paper §III-B, §V,
//! §VII-B): row-length distribution and skew (lockstep completion is
//! bounded by the heaviest bank), bandedness (drives submatrix compression
//! and SpTRSV level counts), and symmetry. Used by the suite tests, the
//! benchmark harness and the `custom_matrix` example.

use crate::{Coo, Csr};
use serde::{Deserialize, Serialize};

/// Summary statistics of a sparse matrix's structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Fraction of non-zero positions.
    pub density: f64,
    /// Mean non-zeros per row.
    pub avg_row_nnz: f64,
    /// Largest row.
    pub max_row_nnz: usize,
    /// Row-length skew: `max / mean` (1.0 = perfectly even).
    pub row_skew: f64,
    /// Coefficient of variation of row lengths (σ/μ).
    pub row_cv: f64,
    /// Mean |row − col| over entries, normalized by the dimension —
    /// 0 ⇒ diagonal, 0.33 ⇒ uniform scatter.
    pub normalized_bandwidth: f64,
    /// Fraction of off-diagonal entries whose mirror position also holds a
    /// non-zero.
    pub pattern_symmetry: f64,
    /// Fraction of entries on the diagonal.
    pub diagonal_fraction: f64,
}

impl MatrixStats {
    /// Analyze a matrix.
    #[must_use]
    pub fn analyze(a: &Coo) -> MatrixStats {
        let nnz = a.nnz();
        let (nrows, ncols) = (a.nrows(), a.ncols());
        let counts = a.row_counts();
        let used_rows = counts.iter().filter(|&&c| c > 0).count().max(1);
        let mean = nnz as f64 / used_rows as f64;
        let max = counts.iter().copied().max().unwrap_or(0);
        let var = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / used_rows as f64;

        let dim = nrows.max(ncols).max(1) as f64;
        let mut band_sum = 0.0f64;
        let mut diag = 0usize;
        for e in a.iter() {
            band_sum += (f64::from(e.row) - f64::from(e.col)).abs();
            if e.row == e.col {
                diag += 1;
            }
        }

        // Pattern symmetry via CSR lookups.
        let csr = Csr::from(a);
        let mut mirrored = 0usize;
        let mut off_diag = 0usize;
        for e in a.iter() {
            if e.row == e.col {
                continue;
            }
            off_diag += 1;
            if (e.col as usize) < nrows
                && (e.row as usize) < ncols
                && csr.get(e.col as usize, e.row as usize).is_some()
            {
                mirrored += 1;
            }
        }

        MatrixStats {
            nrows,
            ncols,
            nnz,
            density: a.density(),
            avg_row_nnz: if nrows == 0 {
                0.0
            } else {
                nnz as f64 / nrows as f64
            },
            max_row_nnz: max,
            row_skew: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            row_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
            normalized_bandwidth: if nnz == 0 {
                0.0
            } else {
                band_sum / nnz as f64 / dim
            },
            pattern_symmetry: if off_diag == 0 {
                1.0
            } else {
                mirrored as f64 / off_diag as f64
            },
            diagonal_fraction: if nnz == 0 {
                0.0
            } else {
                diag as f64 / nnz as f64
            },
        }
    }

    /// Histogram of row lengths in power-of-two buckets
    /// (`[0, 1, 2-3, 4-7, ...]`), ending at the bucket holding the max.
    #[must_use]
    pub fn row_histogram(a: &Coo) -> Vec<usize> {
        let counts = a.row_counts();
        let max = counts.iter().copied().max().unwrap_or(0);
        let buckets = if max == 0 {
            1
        } else {
            (usize::BITS - max.leading_zeros()) as usize + 1
        };
        let mut hist = vec![0usize; buckets + 1];
        for &c in &counts {
            let b = if c == 0 {
                0
            } else {
                (usize::BITS - c.leading_zeros()) as usize
            };
            hist[b] += 1;
        }
        hist
    }
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} nnz={} density={:.2e} row[avg={:.1} max={} skew={:.2} cv={:.2}] band={:.3} sym={:.2}",
            self.nrows,
            self.ncols,
            self.nnz,
            self.density,
            self.avg_row_nnz,
            self.max_row_nnz,
            self.row_skew,
            self.row_cv,
            self.normalized_bandwidth,
            self.pattern_symmetry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn banded_matrix_has_small_bandwidth_and_low_skew() {
        let a = gen::banded_fem(512, 8, 4, 1);
        let s = MatrixStats::analyze(&a);
        assert!(
            s.normalized_bandwidth < 0.02,
            "band {}",
            s.normalized_bandwidth
        );
        assert!(s.row_skew < 2.5, "skew {}", s.row_skew);
        assert!(s.diagonal_fraction > 0.1);
    }

    #[test]
    fn powerlaw_graph_is_skewed_and_scattered() {
        let a = gen::rmat(512, 8, 2);
        let s = MatrixStats::analyze(&a);
        assert!(s.row_skew > 2.5, "skew {}", s.row_skew);
        assert!(
            s.normalized_bandwidth > 0.05,
            "band {}",
            s.normalized_bandwidth
        );
    }

    #[test]
    fn symmetrized_pattern_reports_full_symmetry() {
        let a = gen::rmat(128, 4, 3).symmetrized();
        let s = MatrixStats::analyze(&a);
        assert!((s.pattern_symmetry - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_cover_all_rows() {
        let a = gen::rmat(256, 6, 4);
        let hist = MatrixStats::row_histogram(&a);
        assert_eq!(hist.iter().sum::<usize>(), 256);
        // Empty matrix: single zero bucket.
        let empty = Coo::new(5, 5);
        assert_eq!(MatrixStats::row_histogram(&empty), vec![5, 0]);
    }

    #[test]
    fn empty_and_diagonal_edge_cases() {
        let s = MatrixStats::analyze(&Coo::new(0, 0));
        assert_eq!(s.nnz, 0);
        let mut d = Coo::new(4, 4);
        for i in 0..4 {
            d.push(i, i, 1.0);
        }
        let s = MatrixStats::analyze(&d);
        assert_eq!(s.diagonal_fraction, 1.0);
        assert_eq!(s.pattern_symmetry, 1.0);
        assert_eq!(s.normalized_bandwidth, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let a = gen::rmat(64, 4, 5);
        let text = MatrixStats::analyze(&a).to_string();
        assert!(text.contains("64x64"));
        assert!(text.contains("skew"));
    }
}
