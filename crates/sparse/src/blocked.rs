//! Blocked storage formats: BCSR and BCOO with a configurable square
//! block size.
//!
//! SparseP (PAPERS.md) shows blocked formats winning on PIM for matrices
//! with dense local structure (FEM stencils, multibody blocks): one block
//! coordinate amortizes index metadata over `block²` values, and the
//! zero-filled blocks stream through the PU lanes without per-element
//! index divergence. The price is *fill* — explicitly stored zeros — so
//! blocked only pays when [`Bcsr::fill_ratio`] is high.
//!
//! Both formats store the same blocks; they differ in metadata:
//!
//! * [`Bcsr`] — block-row pointers plus one block-column id per block
//!   (CSR lifted to block granularity);
//! * [`Bcoo`] — an explicit `(block_row, block_col)` coordinate pair per
//!   block (COO lifted to block granularity).
//!
//! Conversions are lossless round-trips: `Coo ↔ Bcsr ↔ Bcoo`, with
//! [`Bcsr::to_coo`] dropping fill zeros so a round trip reproduces the
//! coalesced original. [`Bcsr::to_coo_filled`] keeps the fill explicit —
//! that is the entry stream a PIM kernel executes from (valid for the
//! arithmetic semiring only, where `0·x` is the accumulator identity).

use crate::{Coo, Precision};
use serde::{Deserialize, Serialize};

/// Block compressed sparse row: square `block × block` tiles, block-row
/// pointers, one block-column id per stored tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bcsr {
    nrows: usize,
    ncols: usize,
    block: usize,
    /// `block_row_ptr[i]..block_row_ptr[i+1]` indexes block row `i`'s
    /// tiles in `block_cols` / `vals`.
    block_row_ptr: Vec<usize>,
    /// Block-column id of each stored tile.
    block_cols: Vec<u32>,
    /// Tile values, row-major within each `block × block` tile
    /// (out-of-bounds positions of edge tiles stay 0 and are never
    /// emitted).
    vals: Vec<f64>,
}

impl Bcsr {
    /// Build from COO with square tiles of size `block`, accumulating
    /// duplicate entries.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    #[must_use]
    pub fn from_coo(a: &Coo, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        let bm = a.nrows().div_ceil(block);
        // Deterministic tile order: sort entry indices by (brow, bcol).
        let mut keyed: Vec<(u32, u32, u32, u32, f64)> = a
            .iter()
            .map(|e| {
                (
                    e.row / block as u32,
                    e.col / block as u32,
                    e.row,
                    e.col,
                    e.val,
                )
            })
            .collect();
        keyed.sort_by_key(|&(br, bc, r, c, _)| (br, bc, r, c));

        let mut block_row_ptr = vec![0usize; bm + 1];
        let mut block_cols: Vec<u32> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut last_tile: Option<(u32, u32)> = None;
        for &(br, bc, r, c, v) in &keyed {
            // The sort groups same-tile entries contiguously; a new tile
            // starts whenever the (brow, bcol) pair changes.
            if last_tile != Some((br, bc)) {
                last_tile = Some((br, bc));
                block_cols.push(bc);
                vals.resize(vals.len() + block * block, 0.0);
            }
            // Record the running end of block row `br` (fixed up below).
            block_row_ptr[br as usize + 1] = block_cols.len();
            let (lr, lc) = (r as usize % block, c as usize % block);
            let base = (block_cols.len() - 1) * block * block;
            vals[base + lr * block + lc] += v;
        }
        // Prefix-max so empty block rows inherit the previous end.
        for i in 1..=bm {
            block_row_ptr[i] = block_row_ptr[i].max(block_row_ptr[i - 1]);
        }
        Bcsr {
            nrows: a.nrows(),
            ncols: a.ncols(),
            block,
            block_row_ptr,
            block_cols,
            vals,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Tile edge length.
    #[must_use]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Stored tiles.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.block_cols.len()
    }

    /// True non-zeros (fill excluded).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.iter().filter(|v| **v != 0.0).count()
    }

    /// In-bounds stored slots, fill included — what the PIM stream
    /// executes. Edge tiles are clipped to the matrix shape.
    #[must_use]
    pub fn stored(&self) -> usize {
        let mut total = 0usize;
        for br in 0..self.block_row_ptr.len() - 1 {
            let h = self.tile_height(br);
            for i in self.block_row_ptr[br]..self.block_row_ptr[br + 1] {
                total += h * self.tile_width(self.block_cols[i] as usize);
            }
        }
        total
    }

    /// Fraction of stored (in-bounds) slots holding a true non-zero —
    /// the tuner's block-fill signal. 1.0 for an empty matrix.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        let stored = self.stored();
        if stored == 0 {
            return 1.0;
        }
        self.nnz() as f64 / stored as f64
    }

    /// Storage footprint: padded tile values plus block metadata (8-byte
    /// row pointers, 4-byte block-column ids).
    #[must_use]
    pub fn storage_bytes(&self, precision: Precision) -> usize {
        self.vals.len() * precision.bytes()
            + self.block_cols.len() * 4
            + self.block_row_ptr.len() * 8
    }

    fn tile_height(&self, br: usize) -> usize {
        (self.nrows - br * self.block).min(self.block)
    }

    fn tile_width(&self, bc: usize) -> usize {
        (self.ncols - bc * self.block).min(self.block)
    }

    /// Back to COO, dropping fill zeros: round-trips the coalesced
    /// original.
    #[must_use]
    pub fn to_coo(&self) -> Coo {
        self.emit(false)
    }

    /// Back to COO with the fill explicit (every in-bounds stored slot,
    /// zeros included), in block-row-major order — the execution stream
    /// of a blocked PIM kernel.
    #[must_use]
    pub fn to_coo_filled(&self) -> Coo {
        self.emit(true)
    }

    fn emit(&self, keep_zeros: bool) -> Coo {
        let mut m = Coo::new(self.nrows, self.ncols);
        for br in 0..self.block_row_ptr.len() - 1 {
            let h = self.tile_height(br);
            for i in self.block_row_ptr[br]..self.block_row_ptr[br + 1] {
                let bc = self.block_cols[i] as usize;
                let w = self.tile_width(bc);
                let base = i * self.block * self.block;
                for lr in 0..h {
                    for lc in 0..w {
                        let v = self.vals[base + lr * self.block + lc];
                        if keep_zeros || v != 0.0 {
                            m.push(
                                (br * self.block + lr) as u32,
                                (bc * self.block + lc) as u32,
                                v,
                            );
                        }
                    }
                }
            }
        }
        m
    }

    /// Reference SpMV straight off the tiles.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "bcsr spmv length mismatch");
        let mut y = vec![0.0; self.nrows];
        for br in 0..self.block_row_ptr.len() - 1 {
            let h = self.tile_height(br);
            for i in self.block_row_ptr[br]..self.block_row_ptr[br + 1] {
                let bc = self.block_cols[i] as usize;
                let w = self.tile_width(bc);
                let base = i * self.block * self.block;
                for lr in 0..h {
                    let mut acc = 0.0;
                    for lc in 0..w {
                        acc += self.vals[base + lr * self.block + lc] * x[bc * self.block + lc];
                    }
                    y[br * self.block + lr] += acc;
                }
            }
        }
        y
    }
}

impl From<&Coo> for Bcsr {
    /// [`Bcsr::from_coo`] with the default block size 4.
    fn from(a: &Coo) -> Self {
        Bcsr::from_coo(a, 4)
    }
}

/// Block coordinate format: the same square tiles as [`Bcsr`], addressed
/// by explicit `(block_row, block_col)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bcoo {
    nrows: usize,
    ncols: usize,
    block: usize,
    /// `(block_row, block_col)` of each stored tile, sorted
    /// block-row-major.
    coords: Vec<(u32, u32)>,
    /// Tile values, row-major within each tile.
    vals: Vec<f64>,
}

impl Bcoo {
    /// Build from COO with square tiles of size `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    #[must_use]
    pub fn from_coo(a: &Coo, block: usize) -> Self {
        Bcoo::from(&Bcsr::from_coo(a, block))
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Tile edge length.
    #[must_use]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Stored tiles.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.coords.len()
    }

    /// True non-zeros (fill excluded).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of stored in-bounds slots holding a true non-zero.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        Bcsr::from(self).fill_ratio()
    }

    /// Storage footprint: padded tile values plus one 8-byte coordinate
    /// pair per tile (no row-pointer array).
    #[must_use]
    pub fn storage_bytes(&self, precision: Precision) -> usize {
        self.vals.len() * precision.bytes() + self.coords.len() * 8
    }

    /// Back to COO, dropping fill zeros.
    #[must_use]
    pub fn to_coo(&self) -> Coo {
        Bcsr::from(self).to_coo()
    }

    /// Back to COO with the fill explicit (the blocked execution stream).
    #[must_use]
    pub fn to_coo_filled(&self) -> Coo {
        Bcsr::from(self).to_coo_filled()
    }

    /// Reference SpMV straight off the tiles.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "bcoo spmv length mismatch");
        let mut y = vec![0.0; self.nrows];
        for (i, &(br, bc)) in self.coords.iter().enumerate() {
            let (br, bc) = (br as usize, bc as usize);
            let h = (self.nrows - br * self.block).min(self.block);
            let w = (self.ncols - bc * self.block).min(self.block);
            let base = i * self.block * self.block;
            for lr in 0..h {
                let mut acc = 0.0;
                for lc in 0..w {
                    acc += self.vals[base + lr * self.block + lc] * x[bc * self.block + lc];
                }
                y[br * self.block + lr] += acc;
            }
        }
        y
    }
}

impl From<&Bcsr> for Bcoo {
    fn from(b: &Bcsr) -> Self {
        let mut coords = Vec::with_capacity(b.block_cols.len());
        for br in 0..b.block_row_ptr.len() - 1 {
            for i in b.block_row_ptr[br]..b.block_row_ptr[br + 1] {
                coords.push((br as u32, b.block_cols[i]));
            }
        }
        Bcoo {
            nrows: b.nrows,
            ncols: b.ncols,
            block: b.block,
            coords,
            vals: b.vals.clone(),
        }
    }
}

impl From<&Bcoo> for Bcsr {
    fn from(b: &Bcoo) -> Self {
        let bm = b.nrows.div_ceil(b.block);
        let mut order: Vec<usize> = (0..b.coords.len()).collect();
        order.sort_by_key(|&i| b.coords[i]);
        let mut block_row_ptr = vec![0usize; bm + 1];
        let mut block_cols = Vec::with_capacity(b.coords.len());
        let mut vals = Vec::with_capacity(b.vals.len());
        let tile = b.block * b.block;
        for &i in &order {
            let (br, bc) = b.coords[i];
            block_cols.push(bc);
            vals.extend_from_slice(&b.vals[i * tile..(i + 1) * tile]);
            block_row_ptr[br as usize + 1] = block_cols.len();
        }
        for i in 1..=bm {
            block_row_ptr[i] = block_row_ptr[i].max(block_row_ptr[i - 1]);
        }
        Bcsr {
            nrows: b.nrows,
            ncols: b.ncols,
            block: b.block,
            block_row_ptr,
            block_cols,
            vals,
        }
    }
}

/// Cheap O(nnz) block-fill estimate without materializing tiles: the
/// fraction of in-bounds slots of all touched `block × block` tiles that
/// hold a true non-zero. The tuner's primary blocked-format signal.
///
/// # Panics
///
/// Panics if `block == 0`.
#[must_use]
pub fn block_fill_ratio(a: &Coo, block: usize) -> f64 {
    assert!(block > 0, "block size must be positive");
    if a.nnz() == 0 {
        return 1.0;
    }
    let mut tiles: Vec<(u32, u32)> = a
        .iter()
        .map(|e| (e.row / block as u32, e.col / block as u32))
        .collect();
    tiles.sort_unstable();
    tiles.dedup();
    let capacity: usize = tiles
        .iter()
        .map(|&(br, bc)| {
            let h = (a.nrows() - br as usize * block).min(block);
            let w = (a.ncols() - bc as usize * block).min(block);
            h * w
        })
        .sum();
    // Duplicate COO entries collapse into one slot; count distinct.
    let mut positions: Vec<(u32, u32)> = a.iter().map(|e| (e.row, e.col)).collect();
    positions.sort_unstable();
    positions.dedup();
    positions.len() as f64 / capacity.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Csr};

    fn sorted_entries(a: &Coo) -> Vec<(u32, u32, u64)> {
        let mut v: Vec<(u32, u32, u64)> =
            a.iter().map(|e| (e.row, e.col, e.val.to_bits())).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn coo_bcsr_round_trip_is_lossless() {
        for (a, block) in [
            (gen::rmat(100, 4, 1), 4usize),
            (gen::banded_fem(97, 6, 4, 2), 3),
            (gen::block_diag_fem(64, 8, 0.6, 3), 8),
            (Coo::new(10, 10), 4),
        ] {
            let mut want = a.clone();
            want.coalesce();
            let b = Bcsr::from_coo(&a, block);
            let mut back = b.to_coo();
            back.coalesce();
            assert_eq!(
                sorted_entries(&back),
                sorted_entries(&want),
                "block {block}"
            );
            assert_eq!(b.nnz(), want.iter().filter(|e| e.val != 0.0).count());
        }
    }

    #[test]
    fn csr_bcsr_coo_round_trip() {
        // The satellite's CSR↔BCSR↔COO chain: CSR → COO → BCSR → COO →
        // CSR reproduces the matrix.
        let a = gen::rmat(80, 5, 7);
        let csr = Csr::from(&a);
        let coo = Coo::from(&csr);
        let b = Bcsr::from_coo(&coo, 4);
        let back = Csr::from(&b.to_coo());
        let x = gen::dense_vector(80, 1);
        let (y1, y2) = (csr.spmv(&x), back.spmv(&x));
        for (g, w) in y1.iter().zip(&y2) {
            assert!((g - w).abs() < 1e-12);
        }
        assert_eq!(csr.nnz(), back.nnz());
    }

    #[test]
    fn bcsr_bcoo_round_trip_is_exact() {
        let a = gen::web_hubs(90, 700, 5);
        let b = Bcsr::from_coo(&a, 4);
        let c = Bcoo::from(&b);
        assert_eq!(Bcsr::from(&c), b);
        assert_eq!(c.num_blocks(), b.num_blocks());
        assert_eq!(c.nnz(), b.nnz());
        // And via the Coo constructor.
        assert_eq!(Bcoo::from_coo(&a, 4), c);
    }

    #[test]
    fn blocked_spmv_matches_coo_reference() {
        let a = gen::banded_fem(130, 5, 4, 9);
        let x = gen::dense_vector(130, 2);
        let want = a.spmv(&x);
        let b = Bcsr::from_coo(&a, 4);
        let c = Bcoo::from(&b);
        for (name, got) in [("bcsr", b.spmv(&x)), ("bcoo", c.spmv(&x))] {
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-9, "{name} row {i}");
            }
        }
    }

    #[test]
    fn filled_stream_keeps_explicit_zeros_in_bounds() {
        // Edge tiles of a non-multiple dimension must clip to the shape.
        let a = gen::rmat(50, 3, 4); // 50 % 4 != 0
        let b = Bcsr::from_coo(&a, 4);
        let filled = b.to_coo_filled();
        assert_eq!(filled.nnz(), b.stored());
        for e in filled.iter() {
            assert!((e.row as usize) < 50 && (e.col as usize) < 50);
        }
        // The filled stream computes the same product (zeros are inert
        // under the arithmetic semiring).
        let x = gen::dense_vector(50, 3);
        let want = a.spmv(&x);
        for (g, w) in filled.spmv(&x).iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn fill_ratio_tracks_block_structure() {
        // A dense-blocked matrix fills its tiles; a scattered one doesn't.
        let dense = gen::block_diag_fem(64, 4, 0.9, 1);
        let scatter = gen::rmat(64, 2, 1);
        let fd = Bcsr::from_coo(&dense, 4).fill_ratio();
        let fs = Bcsr::from_coo(&scatter, 4).fill_ratio();
        assert!(fd > fs, "dense {fd:.2} vs scatter {fs:.2}");
        // The cheap estimator agrees with the materialized tiles.
        for (a, block) in [(&dense, 4usize), (&scatter, 4), (&scatter, 8)] {
            let cheap = block_fill_ratio(a, block);
            let full = Bcsr::from_coo(a, block).fill_ratio();
            assert!(
                (cheap - full).abs() < 1e-12,
                "block {block}: {cheap} vs {full}"
            );
        }
    }

    #[test]
    fn metadata_footprints_differ_between_bcsr_and_bcoo() {
        let a = gen::banded_fem(256, 4, 3, 8);
        let b = Bcsr::from_coo(&a, 4);
        let c = Bcoo::from(&b);
        let (sb, sc) = (
            b.storage_bytes(Precision::Fp64),
            c.storage_bytes(Precision::Fp64),
        );
        assert_ne!(sb, sc, "formats must expose a real storage trade-off");
        // Blocked beats element COO on a well-filled banded matrix at
        // INT8 (small values, metadata dominates).
        let coo_bytes = a.storage_bytes(Precision::Int8);
        assert!(b.storage_bytes(Precision::Int8) < coo_bytes);
    }

    #[test]
    fn duplicate_entries_accumulate() {
        let mut a = Coo::new(8, 8);
        a.push(1, 1, 2.0);
        a.push(1, 1, 3.0);
        let b = Bcsr::from_coo(&a, 4);
        assert_eq!(b.num_blocks(), 1);
        let back = b.to_coo();
        assert_eq!(back.nnz(), 1);
        assert_eq!(back.entries()[0].val, 5.0);
    }
}
