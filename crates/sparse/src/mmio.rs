//! MatrixMarket coordinate-format I/O.
//!
//! The paper evaluates on SuiteSparse/SNAP matrices distributed as `.mtx`
//! files. The synthetic suite ([`crate::suite`]) is the default, but real
//! files can be loaded with [`read_str`] / [`read_file`] and plugged into
//! every kernel and benchmark.

use crate::{Coo, SparseError};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Parse a MatrixMarket `coordinate` body from a string.
///
/// Supports the `real`, `integer` and `pattern` fields and the `general`,
/// `symmetric` and `skew-symmetric` symmetries.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] on malformed input and
/// [`SparseError::IndexOutOfBounds`] on out-of-range indices.
pub fn read_str(text: &str) -> Result<Coo, SparseError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".to_string()))?;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse(
            "missing MatrixMarket banner".to_string(),
        ));
    }
    if !header_lc.contains("coordinate") {
        return Err(SparseError::Parse(
            "only coordinate format is supported".to_string(),
        ));
    }
    let pattern = header_lc.contains("pattern");
    let symmetric = header_lc.contains(" symmetric");
    let skew = header_lc.contains("skew-symmetric");

    let mut body = lines.filter(|l| !l.trim_start().starts_with('%') && !l.trim().is_empty());
    let size_line = body
        .next()
        .ok_or_else(|| SparseError::Parse("missing size line".to_string()))?;
    let mut it = size_line.split_whitespace();
    let nrows: usize = parse_tok(it.next(), "rows")?;
    let ncols: usize = parse_tok(it.next(), "cols")?;
    let nnz: usize = parse_tok(it.next(), "nnz")?;

    let mut coo = Coo::new(nrows, ncols);
    let mut count = 0usize;
    for line in body {
        let mut it = line.split_whitespace();
        let r: usize = parse_tok(it.next(), "row index")?;
        let c: usize = parse_tok(it.next(), "col index")?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::Parse("missing value".to_string()))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value: {e}")))?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse("indices are 1-based".to_string()));
        }
        coo.try_push((r - 1) as u32, (c - 1) as u32, v)?;
        if (symmetric || skew) && r != c {
            let mv = if skew { -v } else { v };
            coo.try_push((c - 1) as u32, (r - 1) as u32, mv)?;
        }
        count += 1;
    }
    if count != nnz {
        return Err(SparseError::Parse(format!(
            "size line declares {nnz} entries but {count} found"
        )));
    }
    Ok(coo)
}

/// Read a `.mtx` file from disk.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] wrapping I/O and format failures.
pub fn read_file(path: impl AsRef<Path>) -> Result<Coo, SparseError> {
    let text = fs::read_to_string(path.as_ref())
        .map_err(|e| SparseError::Parse(format!("io error: {e}")))?;
    read_str(&text)
}

/// Serialize a matrix as MatrixMarket `coordinate real general`.
#[must_use]
pub fn write_str(m: &Coo) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    let _ = writeln!(out, "{} {} {}", m.nrows(), m.ncols(), m.nnz());
    for e in m.iter() {
        let _ = writeln!(out, "{} {} {:e}", e.row + 1, e.col + 1, e.val);
    }
    out
}

/// Write a matrix to a `.mtx` file.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] wrapping I/O failures.
pub fn write_file(m: &Coo, path: impl AsRef<Path>) -> Result<(), SparseError> {
    fs::write(path.as_ref(), write_str(m)).map_err(|e| SparseError::Parse(format!("io error: {e}")))
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, SparseError>
where
    T::Err: std::fmt::Display,
{
    tok.ok_or_else(|| SparseError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|e| SparseError::Parse(format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Entry;

    #[test]
    fn roundtrip() {
        let mut m = Coo::new(3, 4);
        m.push(0, 0, 1.5);
        m.push(2, 3, -2.25);
        let text = write_str(&m);
        let back = read_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parses_comments_and_pattern() {
        let text =
            "%%MatrixMarket matrix coordinate pattern general\n% comment\n\n2 2 2\n1 1\n2 2\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.entries()[0], Entry::new(0, 0, 1.0));
    }

    #[test]
    fn expands_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 5\n2 1 3\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.nnz(), 3); // diag + both mirrored off-diag
        assert!(m.entries().contains(&Entry::new(0, 1, 3.0)));
    }

    #[test]
    fn expands_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n";
        let m = read_str(text).unwrap();
        assert!(m.entries().contains(&Entry::new(0, 1, -3.0)));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(read_str("").is_err());
        assert!(read_str("%%MatrixMarket matrix array real general\n2 2\n").is_err());
        assert!(read_str("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5\n").is_err());
        assert!(read_str("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5\n").is_err());
        assert!(read_str("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 5\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut m = Coo::new(2, 2);
        m.push(1, 0, 4.0);
        let path = std::env::temp_dir().join("psim_mmio_test.mtx");
        write_file(&m, &path).unwrap();
        let back = read_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, m);
    }
}
