//! Incomplete LDU factorization (ILDU(0)).
//!
//! The host preprocessor factors `A ≈ L · D · U` with unit triangular `L`,
//! `U` and diagonal `D`, keeping only the sparsity pattern of `A` (no fill).
//! `D` is stored inverted (paper §VI-D: "the ILDU process stores the
//! diagonal matrix D as D⁻¹ in memory for optimal computation") so the PIM
//! preconditioner applies `x' = U⁻¹ D⁻¹ L⁻¹ x` with multiplications only —
//! the division disappears from the kernel's critical path.

use crate::triangular::{Triangle, UnitTriangular};
use crate::{Coo, Csr, Entry, SparseError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The result of an incomplete LDU factorization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ildu {
    /// Unit lower triangular factor (diagonal implicit).
    pub l: UnitTriangular,
    /// Reciprocals of the pivots: `inv_d[i] = 1 / D[i][i]`.
    pub inv_d: Vec<f64>,
    /// Unit upper triangular factor (diagonal implicit).
    pub u: UnitTriangular,
}

impl Ildu {
    /// Factor a square matrix with the IKJ variant of ILU(0), then split the
    /// pivots out so both factors become unit triangular.
    ///
    /// Zero pivots are perturbed to `1e-8 * max|diag|` (a standard static
    /// shift) so preconditioning never divides by zero.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input or
    /// [`SparseError::SingularDiagonal`] when a row has no stored diagonal
    /// and every candidate pivot collapses to zero.
    pub fn factor(a: &Coo) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        let csr = Csr::from(&{
            let mut c = a.clone();
            c.coalesce();
            c
        });

        // Working rows as hash maps restricted to A's pattern.
        let mut rows: Vec<HashMap<u32, f64>> = (0..n)
            .map(|r| csr.row(r).map(|(c, v)| (c as u32, v)).collect())
            .collect();

        let max_diag = (0..n)
            .filter_map(|i| rows[i].get(&(i as u32)).map(|v| v.abs()))
            .fold(0.0f64, f64::max);
        let shift = if max_diag > 0.0 {
            max_diag * 1e-8
        } else {
            1e-8
        };

        // IKJ ILU(0): for each row i, eliminate with previous pivot rows k
        // present in row i's pattern.
        for i in 0..n {
            let cols_below: Vec<u32> = {
                let mut c: Vec<u32> = rows[i]
                    .keys()
                    .copied()
                    .filter(|&c| (c as usize) < i)
                    .collect();
                c.sort_unstable();
                c
            };
            for k in cols_below {
                // Missing or zero pivots fall back to the static shift.
                let pivot = rows[k as usize].get(&k).copied().unwrap_or(0.0);
                let pivot = if pivot == 0.0 { shift } else { pivot };
                let factor = rows[i][&k] / pivot;
                rows[i].insert(k, factor);
                // Update only positions already in row i's pattern (ILU(0)).
                let updates: Vec<(u32, f64)> = rows[k as usize]
                    .iter()
                    .filter(|&(&c, _)| c > k && rows[i].contains_key(&c))
                    .map(|(&c, &v)| (c, v))
                    .collect();
                for (c, ukc) in updates {
                    *rows[i].get_mut(&c).expect("pattern checked") -= factor * ukc;
                }
            }
        }

        let mut l_strict = Coo::new(n, n);
        let mut u_strict = Coo::new(n, n);
        let mut inv_d = vec![0.0; n];
        for (i, row) in rows.iter().enumerate() {
            let mut d = row.get(&(i as u32)).copied().unwrap_or(0.0);
            if d == 0.0 {
                d = shift;
            }
            inv_d[i] = 1.0 / d;
            for (&c, &v) in row {
                use std::cmp::Ordering;
                match (c as usize).cmp(&i) {
                    Ordering::Less => l_strict.push(i as u32, c, v),
                    Ordering::Greater => {
                        // Normalize U's row by the pivot so U is unit
                        // triangular: A ≈ L (D U) with U_unit = D^-1 * U_raw.
                        u_strict.push(i as u32, c, v / d);
                    }
                    Ordering::Equal => {}
                }
            }
        }
        Ok(Ildu {
            l: UnitTriangular::from_strict(Triangle::Lower, l_strict)?,
            inv_d,
            u: UnitTriangular::from_strict(Triangle::Upper, u_strict)?,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.inv_d.len()
    }

    /// Apply the preconditioner: solve `L D U x = b`, i.e.
    /// `x = U⁻¹ (D⁻¹ (L⁻¹ b))` with multiplications by `inv_d`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `b.len() != dim`.
    pub fn apply(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut y = self.l.solve_colwise(b)?;
        for (yi, inv) in y.iter_mut().zip(&self.inv_d) {
            *yi *= inv;
        }
        self.u.solve_colwise(&y)
    }

    /// Reconstruct `L · D · U` densely (test helper; only for small `n`).
    #[must_use]
    pub fn reconstruct_dense(&self) -> Vec<Vec<f64>> {
        let n = self.dim();
        let lf = self.l.to_full();
        let uf = self.u.to_full();
        let mut ld = vec![vec![0.0; n]; n];
        for e in lf.iter() {
            // (L * D)[i][j] = L[i][j] * D[j][j]
            ld[e.row as usize][e.col as usize] = e.val / self.inv_d[e.col as usize];
        }
        let mut out = vec![vec![0.0; n]; n];
        let ucsr = Csr::from(&uf);
        for i in 0..n {
            for (k, &lik) in ld[i].iter().enumerate() {
                if lik == 0.0 {
                    continue;
                }
                for (j, ukj) in ucsr.row(k) {
                    out[i][j] += lik * ukj;
                }
            }
        }
        out
    }
}

/// Generate a diagonally dominant symmetric positive definite matrix with the
/// pattern of `a` (test/bench helper for P-CG operands: the paper's PCG
/// matrices are SPD).
#[must_use]
pub fn make_spd(a: &Coo) -> Coo {
    let n = a.nrows();
    let sym = a.symmetrized();
    let mut row_abs = vec![0.0f64; n];
    let mut entries: Vec<Entry> = Vec::new();
    for e in sym.iter() {
        if e.row != e.col {
            let v = -e.val.abs().max(0.1);
            entries.push(Entry::new(e.row, e.col, v));
            row_abs[e.row as usize] += v.abs();
        }
    }
    // Coalesce duplicates before computing dominance.
    let mut m = Coo::from_entries(n, n, entries).expect("indices from valid matrix");
    m.coalesce();
    let mut row_abs = vec![0.0f64; n];
    for e in m.iter() {
        row_abs[e.row as usize] += e.val.abs();
    }
    for (i, ra) in row_abs.iter().enumerate() {
        m.push(i as u32, i as u32, ra + 1.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn dense_of(a: &Coo) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; a.ncols()]; a.nrows()];
        for e in a.iter() {
            d[e.row as usize][e.col as usize] += e.val;
        }
        d
    }

    #[test]
    fn exact_on_dense_pattern() {
        // A full 3x3 matrix has no dropped fill, so ILDU == LDU exactly.
        let mut a = Coo::new(3, 3);
        let vals = [[4.0, 1.0, 2.0], [1.0, 5.0, 1.0], [2.0, 1.0, 6.0]];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                a.push(i as u32, j as u32, v);
            }
        }
        let f = Ildu::factor(&a).unwrap();
        let rec = f.reconstruct_dense();
        let orig = dense_of(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (rec[i][j] - orig[i][j]).abs() < 1e-10,
                    "mismatch at ({i},{j}): {} vs {}",
                    rec[i][j],
                    orig[i][j]
                );
            }
        }
    }

    #[test]
    fn reproduces_a_on_pattern_for_spd() {
        let base = gen::rmat_seeded(32, 4, 3, 11);
        let a = make_spd(&base);
        let f = Ildu::factor(&a).unwrap();
        let rec = f.reconstruct_dense();
        let orig = dense_of(&a);
        // ILU(0) property: (LDU)[i][j] == A[i][j] on A's pattern for
        // positions updated without dropped fill; check the diagonal and
        // first sub/superdiagonal entries loosely.
        let mut checked = 0;
        for e in a.iter() {
            if e.row == e.col {
                assert!(
                    (rec[e.row as usize][e.col as usize] - orig[e.row as usize][e.col as usize])
                        .abs()
                        < 1e-6 * orig[e.row as usize][e.col as usize].abs().max(1.0)
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn apply_solves_ldu_system() {
        let base = gen::rmat_seeded(16, 4, 3, 7);
        let a = make_spd(&base);
        let f = Ildu::factor(&a).unwrap();
        let x = vec![1.0; 16];
        // b = L D U x
        let ux = f.u.matvec(&x);
        let dux: Vec<f64> = ux.iter().zip(&f.inv_d).map(|(v, inv)| v / inv).collect();
        let b = f.l.matvec(&dux);
        let got = f.apply(&b).unwrap();
        for (g, want) in got.iter().zip(&x) {
            assert!((g - want).abs() < 1e-8, "{g} vs {want}");
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Coo::new(2, 3);
        assert!(matches!(
            Ildu::factor(&a),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn zero_diagonal_gets_shifted() {
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 1.0);
        a.push(1, 0, 1.0);
        // No diagonal at all: factorization still succeeds with shifts.
        let f = Ildu::factor(&a).unwrap();
        assert!(f.inv_d.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn spd_is_diagonally_dominant() {
        let base = gen::rmat_seeded(64, 4, 3, 5);
        let a = make_spd(&base);
        let csr = Csr::from(&a);
        for i in 0..64 {
            let diag = csr.get(i, i).unwrap();
            let off: f64 = csr
                .row(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "row {i} not dominant: {diag} <= {off}");
        }
    }
}
