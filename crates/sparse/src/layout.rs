//! The layout zoo: storage format × partition scheme × placement policy.
//!
//! A [`Layout`] is the unit the autotuner picks and the kernels execute
//! from. Formats manifest on the PIM side as *entry streams*: element
//! formats (COO/CSR) stream the true non-zeros, blocked formats
//! (BCSR/BCOO) stream every in-bounds slot of their tiles, fill zeros
//! included ([`MatrixFormat::expand`]). The partition scheme then cuts
//! that stream ([`PartitionScheme::column_bounds`]) and the policy places
//! the pieces — so every layout runs through the *same* wave machinery,
//! stream-program builders and protocol lints; layouts change the cut and
//! the stored bytes, never the kernel.
//!
//! Blocked expansion is only sound for the arithmetic semiring: a fill
//! zero contributes `0·x = 0`, the `Add` identity. Under `Min`/`Max`
//! accumulation a fill zero is *not* inert, so kernels must refuse (or
//! fall back to COO for) blocked layouts there — `psim_kernels` asserts
//! exactly that.

use crate::blocked::{Bcoo, Bcsr};
use crate::partition::{DistPolicy, PartitionScheme};
use crate::{Coo, Csr, Precision};
use serde::{Deserialize, Serialize};

/// Storage format of a matrix resident in the `MatrixStore`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatrixFormat {
    /// Element coordinate list — the substrate format, zero conversion.
    #[default]
    Coo,
    /// Compressed sparse row — same entry stream as COO, cheaper
    /// metadata (one row pointer per row instead of a row id per entry).
    Csr,
    /// Block CSR with square `block × block` tiles.
    Bcsr {
        /// Tile edge length.
        block: usize,
    },
    /// Block COO with square `block × block` tiles.
    Bcoo {
        /// Tile edge length.
        block: usize,
    },
}

impl MatrixFormat {
    /// Whether this format stores fill (explicit zeros) in tiles.
    #[must_use]
    pub fn is_blocked(&self) -> bool {
        matches!(self, MatrixFormat::Bcsr { .. } | MatrixFormat::Bcoo { .. })
    }

    /// Tile edge length, when blocked.
    #[must_use]
    pub fn block(&self) -> Option<usize> {
        match *self {
            MatrixFormat::Bcsr { block } | MatrixFormat::Bcoo { block } => Some(block),
            _ => None,
        }
    }

    /// The entry stream this format executes on a PIM device: `None`
    /// means "use the COO as-is" (element formats stream identical
    /// entries); blocked formats materialize their fill
    /// ([`Bcsr::to_coo_filled`]). BCSR and BCOO expand to the same
    /// stream — they differ in [`MatrixFormat::storage_bytes`], not in
    /// execution.
    #[must_use]
    pub fn expand(&self, a: &Coo) -> Option<Coo> {
        match *self {
            MatrixFormat::Coo | MatrixFormat::Csr => None,
            MatrixFormat::Bcsr { block } | MatrixFormat::Bcoo { block } => {
                Some(Bcsr::from_coo(a, block).to_coo_filled())
            }
        }
    }

    /// Host-side storage footprint of `a` held in this format.
    #[must_use]
    pub fn storage_bytes(&self, a: &Coo, precision: Precision) -> usize {
        match *self {
            MatrixFormat::Coo => a.storage_bytes(precision),
            MatrixFormat::Csr => Csr::from(a).storage_bytes(precision),
            MatrixFormat::Bcsr { block } => Bcsr::from_coo(a, block).storage_bytes(precision),
            MatrixFormat::Bcoo { block } => Bcoo::from_coo(a, block).storage_bytes(precision),
        }
    }

    /// Short label for reports (`coo`, `csr`, `bcsr4`, `bcoo8`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            MatrixFormat::Coo => "coo".to_string(),
            MatrixFormat::Csr => "csr".to_string(),
            MatrixFormat::Bcsr { block } => format!("bcsr{block}"),
            MatrixFormat::Bcoo { block } => format!("bcoo{block}"),
        }
    }
}

/// One point in the layout space: what the tuner picks per matrix.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Layout {
    /// Storage format.
    pub format: MatrixFormat,
    /// Partition scheme (1D row strips or a 2D column-blocked variant).
    pub scheme: PartitionScheme,
    /// Bank placement policy.
    pub policy: DistPolicy,
}

impl Layout {
    /// The paper's baseline: COO entries, 1D row strips, round-robin.
    #[must_use]
    pub fn baseline() -> Layout {
        Layout::default()
    }

    /// Short label for reports, e.g. `bcsr4/bal2d(4)/ll`.
    #[must_use]
    pub fn label(&self) -> String {
        let policy = match self.policy {
            DistPolicy::RoundRobin => "rr",
            DistPolicy::LeastLoaded => "ll",
        };
        format!("{}/{}/{}", self.format.label(), self.scheme.label(), policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn element_formats_do_not_expand() {
        let a = gen::rmat(64, 3, 1);
        assert!(MatrixFormat::Coo.expand(&a).is_none());
        assert!(MatrixFormat::Csr.expand(&a).is_none());
    }

    #[test]
    fn blocked_expansion_preserves_the_product() {
        let a = gen::banded_fem(70, 4, 3, 2);
        let x = gen::dense_vector(70, 1);
        let want = a.spmv(&x);
        for fmt in [
            MatrixFormat::Bcsr { block: 4 },
            MatrixFormat::Bcoo { block: 4 },
        ] {
            let filled = fmt.expand(&a).expect("blocked formats expand");
            assert!(filled.nnz() >= a.nnz(), "fill only adds entries");
            for (g, w) in filled.spmv(&x).iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "{}", fmt.label());
            }
        }
        // BCSR and BCOO execute the same stream.
        let b = MatrixFormat::Bcsr { block: 4 }.expand(&a).unwrap();
        let c = MatrixFormat::Bcoo { block: 4 }.expand(&a).unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn storage_bytes_rank_formats_sensibly() {
        // Banded FEM at block 4: blocked beats COO on metadata; CSR beats
        // COO (row pointers < per-entry row ids).
        let a = gen::banded_fem(256, 4, 3, 8);
        let p = Precision::Fp32;
        let coo = MatrixFormat::Coo.storage_bytes(&a, p);
        let csr = MatrixFormat::Csr.storage_bytes(&a, p);
        assert!(csr < coo, "csr {csr} vs coo {coo}");
        // Scattered R-MAT at block 8: fill explodes blocked storage.
        let r = gen::rmat(256, 2, 1);
        let bcsr = MatrixFormat::Bcsr { block: 8 }.storage_bytes(&r, p);
        assert!(bcsr > MatrixFormat::Coo.storage_bytes(&r, p));
    }

    #[test]
    fn labels_are_distinct_across_the_grid() {
        let grid = [
            Layout::baseline(),
            Layout {
                format: MatrixFormat::Bcsr { block: 4 },
                scheme: PartitionScheme::Balanced2D { col_blocks: 4 },
                policy: DistPolicy::LeastLoaded,
            },
            Layout {
                format: MatrixFormat::Bcoo { block: 4 },
                scheme: PartitionScheme::Grid2D { col_blocks: 2 },
                policy: DistPolicy::RoundRobin,
            },
        ];
        let mut labels: Vec<String> = grid.iter().map(Layout::label).collect();
        assert_eq!(labels[0], "coo/1d/rr");
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), grid.len());
    }
}
