//! Dense and sparse vector helpers (reference semantics for the BLAS Level 1
//! kernels of Table III).
//!
//! The PIM kernels are verified against these scalar implementations.

use serde::{Deserialize, Serialize};

/// A sparse vector: sorted `(index, value)` pairs.
///
/// This is the host-side view of what a PU's sparse-vector queue holds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    dim: usize,
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// Empty sparse vector of the given logical dimension.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        SparseVec {
            dim,
            entries: Vec::new(),
        }
    }

    /// Build from pairs, sorting by index.
    ///
    /// # Panics
    ///
    /// Panics if any index `>= dim`.
    #[must_use]
    pub fn from_pairs(dim: usize, mut pairs: Vec<(u32, f64)>) -> Self {
        assert!(
            pairs.iter().all(|&(i, _)| (i as usize) < dim),
            "sparse vector index out of range"
        );
        pairs.sort_by_key(|&(i, _)| i);
        SparseVec {
            dim,
            entries: pairs,
        }
    }

    /// Gather the non-zeros of a dense vector (the GATHER kernel).
    #[must_use]
    pub fn gather(dense: &[f64]) -> Self {
        SparseVec {
            dim: dense.len(),
            entries: dense
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect(),
        }
    }

    /// Scatter into a dense vector (the SCATTER kernel): positions not in
    /// the sparse vector keep their previous contents.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != self.dim()`.
    pub fn scatter_into(&self, dense: &mut [f64]) {
        assert_eq!(dense.len(), self.dim, "scatter length mismatch");
        for &(i, v) in &self.entries {
            dense[i as usize] = v;
        }
    }

    /// Densify to a `Vec<f64>`.
    #[must_use]
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.dim];
        self.scatter_into(&mut d);
        d
    }

    /// Logical dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Borrow the `(index, value)` pairs (sorted by index).
    #[must_use]
    pub fn pairs(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Iterate over the pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (u32, f64)> {
        self.entries.iter()
    }

    /// Element-wise binary operation against another sparse vector, keeping
    /// the *union* of patterns (missing side contributes the identity).
    /// This is the semantics of the PU's index calculator in union mode.
    #[must_use]
    pub fn union_op(
        &self,
        other: &SparseVec,
        identity: f64,
        op: impl Fn(f64, f64) -> f64,
    ) -> SparseVec {
        assert_eq!(self.dim, other.dim, "union_op dimension mismatch");
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::new();
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ia, va)), Some(&(ib, vb))) => {
                    use std::cmp::Ordering;
                    match ia.cmp(&ib) {
                        Ordering::Less => {
                            out.push((ia, op(va, identity)));
                            i += 1;
                        }
                        Ordering::Greater => {
                            out.push((ib, op(identity, vb)));
                            j += 1;
                        }
                        Ordering::Equal => {
                            out.push((ia, op(va, vb)));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                (Some(&(ia, va)), None) => {
                    out.push((ia, op(va, identity)));
                    i += 1;
                }
                (None, Some(&(ib, vb))) => {
                    out.push((ib, op(identity, vb)));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        SparseVec {
            dim: self.dim,
            entries: out,
        }
    }

    /// Element-wise binary operation keeping the *intersection* of patterns
    /// (index-matching elements only — the skip mechanism of [ExTensor]).
    ///
    /// [ExTensor]: https://doi.org/10.1145/3352460.3358275
    #[must_use]
    pub fn intersect_op(&self, other: &SparseVec, op: impl Fn(f64, f64) -> f64) -> SparseVec {
        use std::cmp::Ordering;
        assert_eq!(self.dim, other.dim, "intersect_op dimension mismatch");
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::new();
        while i < self.entries.len() && j < other.entries.len() {
            let (ia, va) = self.entries[i];
            let (ib, vb) = other.entries[j];
            match ia.cmp(&ib) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    out.push((ia, op(va, vb)));
                    i += 1;
                    j += 1;
                }
            }
        }
        SparseVec {
            dim: self.dim,
            entries: out,
        }
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    /// Collect pairs; the dimension is inferred as one past the max index.
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        let pairs: Vec<(u32, f64)> = iter.into_iter().collect();
        let dim = pairs
            .iter()
            .map(|&(i, _)| i as usize + 1)
            .max()
            .unwrap_or(0);
        SparseVec::from_pairs(dim, pairs)
    }
}

/// `y <- a*x + y` (DAXPY).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y <- a*x_sp + y` for a sparse x (SpAXPY).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn spaxpy(a: f64, x: &SparseVec, y: &mut [f64]) {
    assert_eq!(x.dim(), y.len(), "spaxpy length mismatch");
    for &(i, v) in x.iter() {
        y[i as usize] += a * v;
    }
}

/// Dot product (DDOT).
///
/// # Panics
///
/// Panics on length mismatch.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Sparse-dense dot product (SpDOT).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn spdot(x: &SparseVec, y: &[f64]) -> f64 {
    assert_eq!(x.dim(), y.len(), "spdot length mismatch");
    x.iter().map(|&(i, v)| v * y[i as usize]).sum()
}

/// Euclidean norm (DNRM2).
#[must_use]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `x <- a*x` (DSCAL).
pub fn scal(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_scatter_roundtrip() {
        let d = vec![0.0, 1.5, 0.0, -2.0];
        let s = SparseVec::gather(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn union_add() {
        let a = SparseVec::from_pairs(5, vec![(0, 1.0), (3, 2.0)]);
        let b = SparseVec::from_pairs(5, vec![(3, 5.0), (4, 7.0)]);
        let u = a.union_op(&b, 0.0, |x, y| x + y);
        assert_eq!(u.pairs(), &[(0, 1.0), (3, 7.0), (4, 7.0)]);
    }

    #[test]
    fn intersect_mul() {
        let a = SparseVec::from_pairs(5, vec![(0, 2.0), (3, 2.0)]);
        let b = SparseVec::from_pairs(5, vec![(3, 5.0), (4, 7.0)]);
        let m = a.intersect_op(&b, |x, y| x * y);
        assert_eq!(m.pairs(), &[(3, 10.0)]);
    }

    #[test]
    fn blas1_ops() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, 1.0, -1.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut x = vec![2.0, 4.0];
        scal(0.5, &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn sparse_blas1_ops() {
        let s = SparseVec::from_pairs(3, vec![(1, 2.0)]);
        let mut y = vec![1.0, 1.0, 1.0];
        spaxpy(3.0, &s, &mut y);
        assert_eq!(y, vec![1.0, 7.0, 1.0]);
        assert_eq!(spdot(&s, &[0.0, 4.0, 0.0]), 8.0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn from_pairs_validates() {
        let _ = SparseVec::from_pairs(2, vec![(5, 1.0)]);
    }

    #[test]
    fn from_iterator_infers_dim() {
        let s: SparseVec = vec![(4u32, 1.0)].into_iter().collect();
        assert_eq!(s.dim(), 5);
    }
}
