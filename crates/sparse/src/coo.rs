//! Coordinate-list (COO) sparse matrix format.
//!
//! COO is pSyncPIM's native storage format (paper §IV-C): each non-zero is a
//! `(row, col, value)` triple, which maps directly onto the PU's three
//! sparse-vector sub-queues and avoids the extra metadata indirection of
//! CSR/CSC inside a bank.

use crate::{Csc, Csr, SparseError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One non-zero element: `(row, col, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Row index.
    pub row: u32,
    /// Column index.
    pub col: u32,
    /// Numeric value (functional `f64` carrier; see [`crate::Precision`]).
    pub val: f64,
}

impl Entry {
    /// Create an entry.
    #[must_use]
    pub fn new(row: u32, col: u32, val: f64) -> Self {
        Entry { row, col, val }
    }
}

/// A sparse matrix in coordinate-list form.
///
/// Entries are kept in insertion order until a sort is requested; most
/// transformations (`to_csr`, partitioning) sort internally as needed.
///
/// ```
/// use psim_sparse::Coo;
/// let mut m = Coo::new(2, 2);
/// m.push(0, 0, 1.0);
/// m.push(1, 0, -2.0);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.density(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<Entry>,
}

impl Coo {
    /// Create an empty matrix of the given shape.
    #[must_use]
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Build from a list of entries, validating indices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any entry lies outside
    /// the shape.
    pub fn from_entries(
        nrows: usize,
        ncols: usize,
        entries: Vec<Entry>,
    ) -> Result<Self, SparseError> {
        for e in &entries {
            if e.row as usize >= nrows || e.col as usize >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: e.row as usize,
                    col: e.col as usize,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(Coo {
            nrows,
            ncols,
            entries,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros (duplicates counted individually).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of non-zero positions, `nnz / (nrows * ncols)`.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// Append a non-zero.
    ///
    /// # Panics
    ///
    /// Panics if the index lies outside the matrix shape (use
    /// [`Coo::try_push`] for a fallible variant).
    pub fn push(&mut self, row: u32, col: u32, val: f64) {
        assert!(
            (row as usize) < self.nrows && (col as usize) < self.ncols,
            "entry ({row}, {col}) outside {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries.push(Entry { row, col, val });
    }

    /// Append a non-zero, failing on out-of-bounds indices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] when the index is invalid.
    pub fn try_push(&mut self, row: u32, col: u32, val: f64) -> Result<(), SparseError> {
        if row as usize >= self.nrows || col as usize >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: row as usize,
                col: col as usize,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.push(Entry { row, col, val });
        Ok(())
    }

    /// Borrow the entries.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Iterate over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Entry> {
        self.entries.iter()
    }

    /// Consume into the entry vector.
    #[must_use]
    pub fn into_entries(self) -> Vec<Entry> {
        self.entries
    }

    /// Sort entries row-major (row, then column). This is the layout SpMV
    /// bank mapping expects.
    pub fn sort_row_major(&mut self) {
        self.entries.sort_by_key(|e| (e.row, e.col));
    }

    /// Sort entries column-major (column, then row). This is the layout the
    /// SpTRSV memory mapping uses (paper §VI-B: column-first COO).
    pub fn sort_col_major(&mut self) {
        self.entries.sort_by_key(|e| (e.col, e.row));
    }

    /// Sum duplicate entries at the same coordinate and drop explicit zeros.
    pub fn coalesce(&mut self) {
        self.sort_row_major();
        let mut out: Vec<Entry> = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            match out.last_mut() {
                Some(last) if last.row == e.row && last.col == e.col => last.val += e.val,
                _ => out.push(e),
            }
        }
        out.retain(|e| e.val != 0.0);
        self.entries = out;
    }

    /// Transpose (swap rows/columns of every entry).
    #[must_use]
    pub fn transpose(&self) -> Coo {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self
                .entries
                .iter()
                .map(|e| Entry::new(e.col, e.row, e.val))
                .collect(),
        }
    }

    /// Number of non-zeros in each row.
    #[must_use]
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for e in &self.entries {
            counts[e.row as usize] += 1;
        }
        counts
    }

    /// Number of non-zeros in each column.
    #[must_use]
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ncols];
        for e in &self.entries {
            counts[e.col as usize] += 1;
        }
        counts
    }

    /// Reference (scalar) sparse matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "spmv operand length mismatch");
        let mut y = vec![0.0; self.nrows];
        for e in &self.entries {
            y[e.row as usize] += e.val * x[e.col as usize];
        }
        y
    }

    /// Extract the sub-matrix covering rows `r0..r1` and columns `c0..c1`
    /// (half-open), re-indexed to a local origin.
    #[must_use]
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Coo {
        let mut sub = Coo::new(r1 - r0, c1 - c0);
        for e in &self.entries {
            let (r, c) = (e.row as usize, e.col as usize);
            if r >= r0 && r < r1 && c >= c0 && c < c1 {
                sub.entries
                    .push(Entry::new((r - r0) as u32, (c - c0) as u32, e.val));
            }
        }
        sub
    }

    /// Make the matrix pattern symmetric by mirroring entries (values are
    /// copied). Useful for turning directed graph generators into undirected
    /// adjacency matrices. Diagonal entries are untouched; duplicates are
    /// coalesced keeping the first value (mirror adds only missing mates).
    #[must_use]
    pub fn symmetrized(&self) -> Coo {
        let mut seen: std::collections::HashSet<(u32, u32)> =
            self.entries.iter().map(|e| (e.row, e.col)).collect();
        let mut out = self.clone();
        for e in self.entries.clone() {
            if e.row != e.col && !seen.contains(&(e.col, e.row)) {
                seen.insert((e.col, e.row));
                out.entries.push(Entry::new(e.col, e.row, e.val));
            }
        }
        out
    }

    /// Footprint in bytes when stored as COO with 4-byte indices and values
    /// of the given precision (the layout the PIM banks use).
    #[must_use]
    pub fn storage_bytes(&self, precision: crate::Precision) -> usize {
        self.nnz() * (8 + precision.bytes())
    }
}

impl fmt::Display for Coo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Coo {}x{} nnz={} density={:.3e}",
            self.nrows,
            self.ncols,
            self.nnz(),
            self.density()
        )
    }
}

impl From<&Csr> for Coo {
    fn from(csr: &Csr) -> Self {
        let mut coo = Coo::new(csr.nrows(), csr.ncols());
        for r in 0..csr.nrows() {
            for (c, v) in csr.row(r) {
                coo.entries.push(Entry::new(r as u32, c as u32, v));
            }
        }
        coo
    }
}

impl From<&Csc> for Coo {
    fn from(csc: &Csc) -> Self {
        let mut coo = Coo::new(csc.nrows(), csc.ncols());
        for c in 0..csc.ncols() {
            for (r, v) in csc.col(c) {
                coo.entries.push(Entry::new(r as u32, c as u32, v));
            }
        }
        coo
    }
}

impl FromIterator<Entry> for Coo {
    /// Collect entries; the shape is inferred as one past the maximum index.
    fn from_iter<T: IntoIterator<Item = Entry>>(iter: T) -> Self {
        let entries: Vec<Entry> = iter.into_iter().collect();
        let nrows = entries
            .iter()
            .map(|e| e.row as usize + 1)
            .max()
            .unwrap_or(0);
        let ncols = entries
            .iter()
            .map(|e| e.col as usize + 1)
            .max()
            .unwrap_or(0);
        Coo {
            nrows,
            ncols,
            entries,
        }
    }
}

impl Extend<Entry> for Coo {
    fn extend<T: IntoIterator<Item = Entry>>(&mut self, iter: T) {
        for e in iter {
            self.push(e.row, e.col, e.val);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, 4.0);
        m
    }

    #[test]
    fn shape_and_counts() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_counts(), vec![2, 1, 1]);
        assert_eq!(m.col_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn spmv_reference() {
        let m = sample();
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_out_of_bounds_panics() {
        let mut m = Coo::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    fn try_push_reports_bounds() {
        let mut m = Coo::new(2, 2);
        assert!(m.try_push(1, 1, 5.0).is_ok());
        assert!(matches!(
            m.try_push(0, 9, 1.0),
            Err(SparseError::IndexOutOfBounds { col: 9, .. })
        ));
    }

    #[test]
    fn coalesce_merges_duplicates_and_drops_zeros() {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 5.0);
        m.push(1, 1, -5.0);
        m.coalesce();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.entries()[0], Entry::new(0, 0, 3.0));
    }

    #[test]
    fn transpose_swaps_shape() {
        let m = Coo::from_entries(2, 4, vec![Entry::new(1, 3, 7.0)]).unwrap();
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (4, 2));
        assert_eq!(t.entries()[0], Entry::new(3, 1, 7.0));
    }

    #[test]
    fn submatrix_reindexes() {
        let m = sample();
        let s = m.submatrix(1, 3, 0, 2);
        assert_eq!((s.nrows(), s.ncols()), (2, 2));
        assert_eq!(s.nnz(), 2); // (1,1,3.0) -> (0,1); (2,0,4.0) -> (1,0)
        assert!(s.entries().contains(&Entry::new(0, 1, 3.0)));
        assert!(s.entries().contains(&Entry::new(1, 0, 4.0)));
    }

    #[test]
    fn symmetrized_mirrors_missing_mates() {
        let mut m = Coo::new(3, 3);
        m.push(0, 1, 1.0);
        m.push(1, 0, 9.0); // mate already present; must not duplicate
        m.push(2, 0, 4.0);
        let s = m.symmetrized();
        assert_eq!(s.nnz(), 4);
        assert!(s.entries().contains(&Entry::new(0, 2, 4.0)));
    }

    #[test]
    fn sort_orders() {
        let mut m = sample();
        m.sort_col_major();
        let cols: Vec<u32> = m.iter().map(|e| e.col).collect();
        assert!(cols.windows(2).all(|w| w[0] <= w[1]));
        m.sort_row_major();
        let rows: Vec<u32> = m.iter().map(|e| e.row).collect();
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn from_iterator_infers_shape() {
        let m: Coo = vec![Entry::new(2, 5, 1.0)].into_iter().collect();
        assert_eq!((m.nrows(), m.ncols()), (3, 6));
    }

    #[test]
    fn storage_bytes_counts_indices_and_values() {
        let m = sample();
        assert_eq!(m.storage_bytes(crate::Precision::Fp64), 4 * 16);
        assert_eq!(m.storage_bytes(crate::Precision::Int8), 4 * 9);
    }
}
