//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing or transforming sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of matrix rows.
        nrows: usize,
        /// Number of matrix columns.
        ncols: usize,
    },
    /// A matrix that must be square (e.g. a triangular solve operand) is not.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// A vector operand's length does not match the matrix dimension.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Observed length.
        found: usize,
    },
    /// A triangular operation found a zero (or missing) diagonal element.
    SingularDiagonal {
        /// Row whose diagonal is zero/missing.
        row: usize,
    },
    /// Input text (e.g. MatrixMarket) could not be parsed.
    Parse(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) lies outside the {nrows}x{ncols} matrix"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is {nrows}x{ncols} but must be square")
            }
            SparseError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "vector length {found} does not match dimension {expected}"
                )
            }
            SparseError::SingularDiagonal { row } => {
                write!(f, "zero or missing diagonal element at row {row}")
            }
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SparseError::NotSquare { nrows: 3, ncols: 4 };
        let s = e.to_string();
        assert!(s.contains("3x4"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
