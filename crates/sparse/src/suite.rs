//! The evaluation matrix suite (paper Table IX).
//!
//! The 26 SuiteSparse/SNAP matrices are reproduced as deterministic
//! synthetic matrices matching each original's published dimension and
//! density, with the generator family chosen per matrix class (see
//! [`crate::gen`]). `soc-sign-epinions` and `Stanford` carry the INT8
//! native precision the paper exploits in Figure 8; everything else is FP64.
//!
//! Use [`MatrixSpec::generate`] at scale 1.0 for paper-scale runs or a
//! smaller scale for quick tests — scaling preserves the average row degree
//! (the structural property pSyncPIM's behaviour depends on), not the raw
//! density.

use crate::{gen, Coo, Precision};
use serde::{Deserialize, Serialize};

/// Workload tags from the last column of Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tag {
    /// Used in the SpMV kernel evaluation (Figure 8).
    SpMv,
    /// Used in the SpTRSV kernel evaluation and P-BiCGStab (Figure 9).
    SpTrsv,
    /// Positive definite; used in the P-CG application.
    Pcg,
    /// Used in the graph applications (Figures 2, 11, 12).
    Graphs,
}

/// Structural family controlling which generator reproduces the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Family {
    /// Power-law graph (SNAP social/p2p networks).
    PowerLawGraph,
    /// Banded FEM/PDE stencil; `bandwidth_frac` scales the band relative to
    /// the dimension.
    BandedFem {
        /// Band half-width as a fraction of the dimension.
        bandwidth_frac: f64,
    },
    /// Uniform random sparsity (chemical-process style).
    Uniform,
    /// Clustered dense diagonal blocks (multibody FEM).
    BlockedFem,
    /// Web-crawl style with hub columns.
    WebHubs,
    /// Layered DAG: few huge level sets (the `parabolic_fem` shape).
    Layered {
        /// Number of dependency layers (= SpTRSV level count).
        layers: usize,
    },
}

/// One row of Table IX.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MatrixSpec {
    /// SuiteSparse/SNAP name.
    pub name: &'static str,
    /// Published dimension (square).
    pub dim: usize,
    /// Published density.
    pub density: f64,
    /// Generator family.
    pub family: Family,
    /// Workload tags.
    pub tags: &'static [Tag],
    /// Native element precision the paper runs this matrix at.
    pub precision: Precision,
}

impl MatrixSpec {
    /// Average non-zeros per row implied by the published numbers.
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        (self.density * self.dim as f64).max(1.0)
    }

    /// Published non-zero count (dim² · density).
    #[must_use]
    pub fn nnz(&self) -> usize {
        (self.density * self.dim as f64 * self.dim as f64) as usize
    }

    /// Whether the spec carries a given tag.
    #[must_use]
    pub fn has_tag(&self, tag: Tag) -> bool {
        self.tags.contains(&tag)
    }

    /// Generate the synthetic stand-in at `scale` (1.0 = published
    /// dimension). The average row degree is preserved under scaling.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    #[must_use]
    pub fn generate(&self, scale: f64) -> Coo {
        assert!(scale > 0.0, "scale must be positive");
        let dim = ((self.dim as f64 * scale) as usize).max(32);
        let deg = self.avg_degree().round().max(1.0) as usize;
        let salt = hash_name(self.name);
        match self.family {
            Family::PowerLawGraph => gen::rmat(dim, deg, salt),
            Family::BandedFem { bandwidth_frac } => {
                // The band must be wide enough to host `deg` distinct
                // neighbours per row even at small scales.
                let bw = ((dim as f64 * bandwidth_frac) as usize).clamp(2 * deg + 2, dim.max(2));
                gen::banded_fem(dim, bw, deg.saturating_sub(1).max(1), salt)
            }
            Family::Uniform => gen::erdos_renyi(dim, dim, dim * deg, salt),
            Family::BlockedFem => {
                let block = (2 * deg).clamp(4, dim);
                gen::block_diag_fem(dim, block, 0.5, salt)
            }
            Family::WebHubs => gen::web_hubs(dim, dim * deg, salt),
            Family::Layered { layers } => gen::layered_dag(dim, deg, layers, salt),
        }
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

const FP64: Precision = Precision::Fp64;
const INT8: Precision = Precision::Int8;

/// All 26 matrices of Table IX.
pub const TABLE_IX: [MatrixSpec; 26] = [
    MatrixSpec {
        name: "2cubes_sphere",
        dim: 101_492,
        density: 1.60e-5,
        family: Family::BandedFem {
            bandwidth_frac: 0.01,
        },
        tags: &[Tag::SpTrsv, Tag::Pcg],
        precision: FP64,
    },
    MatrixSpec {
        name: "amazon0312",
        dim: 400_727,
        density: 1.99e-5,
        family: Family::PowerLawGraph,
        tags: &[Tag::Graphs],
        precision: FP64,
    },
    MatrixSpec {
        name: "bcsstk32",
        dim: 44_609,
        density: 1.01e-3,
        family: Family::BandedFem {
            bandwidth_frac: 0.002,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "ca-CondMat",
        dim: 23_133,
        density: 3.49e-4,
        family: Family::PowerLawGraph,
        tags: &[Tag::Graphs],
        precision: FP64,
    },
    MatrixSpec {
        name: "cant",
        dim: 62_451,
        density: 1.03e-3,
        family: Family::BandedFem {
            bandwidth_frac: 0.005,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "consph",
        dim: 83_334,
        density: 8.66e-4,
        family: Family::BandedFem {
            bandwidth_frac: 0.005,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "crankseg_2",
        dim: 63_838,
        density: 3.47e-3,
        family: Family::BlockedFem,
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "ct20stif",
        dim: 52_329,
        density: 9.50e-4,
        family: Family::BandedFem {
            bandwidth_frac: 0.01,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "email-Enron",
        dim: 36_692,
        density: 2.73e-4,
        family: Family::PowerLawGraph,
        tags: &[Tag::Graphs],
        precision: FP64,
    },
    MatrixSpec {
        name: "facebook",
        dim: 4_039,
        density: 5.41e-3,
        family: Family::PowerLawGraph,
        tags: &[Tag::Graphs],
        precision: FP64,
    },
    MatrixSpec {
        name: "lhr71",
        dim: 70_304,
        density: 3.02e-4,
        family: Family::Uniform,
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "offshore",
        dim: 259_789,
        density: 6.29e-5,
        family: Family::BandedFem {
            bandwidth_frac: 0.008,
        },
        tags: &[Tag::SpTrsv, Tag::Pcg],
        precision: FP64,
    },
    MatrixSpec {
        name: "ohne2",
        dim: 181_343,
        density: 2.09e-4,
        family: Family::BandedFem {
            bandwidth_frac: 0.01,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "p2p-Gnutella31",
        dim: 62_586,
        density: 3.62e-5,
        family: Family::PowerLawGraph,
        tags: &[Tag::Graphs],
        precision: FP64,
    },
    MatrixSpec {
        name: "parabolic_fem",
        dim: 525_825,
        density: 1.33e-5,
        family: Family::Layered { layers: 10 },
        tags: &[Tag::SpTrsv, Tag::Pcg],
        precision: FP64,
    },
    MatrixSpec {
        name: "pdb1HYS",
        dim: 36_417,
        density: 3.28e-3,
        family: Family::BlockedFem,
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "poisson3Da",
        dim: 13_514,
        density: 1.93e-3,
        family: Family::BandedFem {
            bandwidth_frac: 0.05,
        },
        tags: &[Tag::SpTrsv],
        precision: FP64,
    },
    MatrixSpec {
        name: "pwtk",
        dim: 217_918,
        density: 2.43e-4,
        family: Family::BandedFem {
            bandwidth_frac: 0.002,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "rma10",
        dim: 46_835,
        density: 1.06e-3,
        family: Family::BandedFem {
            bandwidth_frac: 0.01,
        },
        tags: &[Tag::SpMv, Tag::SpTrsv],
        precision: FP64,
    },
    MatrixSpec {
        name: "roadNet-CA",
        dim: 1_971_281,
        density: 1.42e-6,
        family: Family::BandedFem {
            bandwidth_frac: 0.001,
        },
        tags: &[Tag::Graphs],
        precision: FP64,
    },
    MatrixSpec {
        name: "shipsec1",
        dim: 140_874,
        density: 1.80e-4,
        family: Family::BandedFem {
            bandwidth_frac: 0.003,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "soc-sign-epinions",
        dim: 131_828,
        density: 4.84e-5,
        family: Family::PowerLawGraph,
        tags: &[Tag::SpMv],
        precision: INT8,
    },
    MatrixSpec {
        name: "Stanford",
        dim: 281_903,
        density: 2.90e-5,
        family: Family::WebHubs,
        tags: &[Tag::SpMv, Tag::Graphs],
        precision: INT8,
    },
    MatrixSpec {
        name: "webbase-1M",
        dim: 1_000_005,
        density: 3.11e-6,
        family: Family::WebHubs,
        tags: &[Tag::SpMv],
        precision: FP64,
    },
    MatrixSpec {
        name: "wiki-Vote",
        dim: 8_297,
        density: 1.51e-3,
        family: Family::PowerLawGraph,
        tags: &[Tag::Graphs],
        precision: FP64,
    },
    MatrixSpec {
        name: "xenon2",
        dim: 157_464,
        density: 1.56e-4,
        family: Family::BandedFem {
            bandwidth_frac: 0.005,
        },
        tags: &[Tag::SpMv],
        precision: FP64,
    },
];

/// Specs carrying a tag, in Table IX order.
#[must_use]
pub fn with_tag(tag: Tag) -> Vec<&'static MatrixSpec> {
    TABLE_IX.iter().filter(|s| s.has_tag(tag)).collect()
}

/// Look up a spec by its SuiteSparse/SNAP name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static MatrixSpec> {
    TABLE_IX.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_26_matrices() {
        assert_eq!(TABLE_IX.len(), 26);
    }

    #[test]
    fn tag_counts_match_table_ix() {
        assert_eq!(with_tag(Tag::SpMv).len(), 15);
        assert_eq!(with_tag(Tag::SpTrsv).len(), 5);
        assert_eq!(with_tag(Tag::Pcg).len(), 3);
        assert_eq!(with_tag(Tag::Graphs).len(), 8);
    }

    #[test]
    fn int8_matrices_match_paper() {
        let int8: Vec<&str> = TABLE_IX
            .iter()
            .filter(|s| s.precision == Precision::Int8)
            .map(|s| s.name)
            .collect();
        assert_eq!(int8, vec!["soc-sign-epinions", "Stanford"]);
    }

    #[test]
    fn by_name_finds() {
        assert!(by_name("pwtk").is_some());
        assert!(by_name("not-a-matrix").is_none());
    }

    #[test]
    fn generation_matches_degree_roughly() {
        for spec in &TABLE_IX[..4] {
            let m = spec.generate(0.02);
            let deg = m.nnz() as f64 / m.nrows() as f64;
            let want = spec.avg_degree();
            assert!(
                deg > 0.3 * want && deg < 3.0 * want.max(2.0),
                "{}: got degree {deg}, wanted ~{want}",
                spec.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_name("facebook").unwrap();
        assert_eq!(spec.generate(0.5), spec.generate(0.5));
    }

    #[test]
    fn scaled_dim_tracks_scale() {
        let spec = by_name("cant").unwrap();
        let m = spec.generate(0.01);
        let want = (spec.dim as f64 * 0.01) as usize;
        assert_eq!(m.nrows(), want.max(32));
    }

    #[test]
    fn families_produce_their_structural_signatures() {
        use crate::MatrixStats;
        // Banded FEM: concentrated near the diagonal.
        let banded = by_name("pwtk").unwrap().generate(0.05);
        assert!(MatrixStats::analyze(&banded).normalized_bandwidth < 0.05);
        // Power-law graphs: heavy row skew.
        let graph = by_name("amazon0312").unwrap().generate(0.05);
        assert!(MatrixStats::analyze(&graph).row_skew > 2.0);
        // Web hubs: extreme column concentration shows up as row scatter +
        // high bandwidth.
        let hubs = by_name("Stanford").unwrap().generate(0.05);
        assert!(MatrixStats::analyze(&hubs).normalized_bandwidth > 0.05);
        // Layered: symmetric pattern by construction.
        let layered = by_name("parabolic_fem").unwrap().generate(0.02);
        assert!(MatrixStats::analyze(&layered).pattern_symmetry > 0.99);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = TABLE_IX.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }
}
