//! Value precisions supported by the pSyncPIM VALU (Table VIII).
//!
//! The processing unit has a 32-byte datapath; the number of SIMD lanes per
//! vector operation therefore depends on element width: 32 lanes for 8-bit
//! elements down to 4 lanes for 64-bit elements.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element precision of a matrix/vector as stored in DRAM and processed by
/// the PU's vector ALU.
///
/// The simulator carries all values as `f64` internally (a *functional*
/// superset); precision affects storage footprint, SIMD lane count and —
/// for integer types — value quantization.
///
/// ```
/// use psim_sparse::Precision;
/// assert_eq!(Precision::Fp64.bytes(), 8);
/// assert_eq!(Precision::Int8.lanes(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Precision {
    /// 8-bit signed integer.
    Int8,
    /// 16-bit signed integer.
    Int16,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// IEEE 754 half precision.
    Fp16,
    /// IEEE 754 single precision.
    Fp32,
    /// IEEE 754 double precision.
    Fp64,
}

impl Precision {
    /// All supported precisions, narrowest first within each family.
    pub const ALL: [Precision; 7] = [
        Precision::Int8,
        Precision::Int16,
        Precision::Int32,
        Precision::Int64,
        Precision::Fp16,
        Precision::Fp32,
        Precision::Fp64,
    ];

    /// Width of one element in bytes.
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Int8 => 1,
            Precision::Int16 | Precision::Fp16 => 2,
            Precision::Int32 | Precision::Fp32 => 4,
            Precision::Int64 | Precision::Fp64 => 8,
        }
    }

    /// Number of SIMD lanes in one 32-byte datapath pass (Table VIII:
    /// INT8: 32, INT16/FP16: 16, INT32/FP32: 8, INT64/FP64: 4).
    #[must_use]
    pub const fn lanes(self) -> usize {
        32 / self.bytes()
    }

    /// `true` for the floating-point family.
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(self, Precision::Fp16 | Precision::Fp32 | Precision::Fp64)
    }

    /// Per-PU arithmetic throughput in operations per second at the 250 MHz
    /// PU clock (Table VIII: 25.6/12.8/6.4/3.2 G(FL)OPS across all 256 PUs
    /// corresponds to `lanes * 0.25e9` per PU... scaled at cube level by the
    /// engine).
    #[must_use]
    pub fn ops_per_pu_cycle(self) -> usize {
        self.lanes()
    }

    /// Quantize a functional `f64` value to what this precision can
    /// represent. Floating types round via the nearest representable value
    /// (FP16 modeled with round-to-nearest on a 10-bit mantissa); integer
    /// types saturate.
    #[must_use]
    pub fn quantize(self, v: f64) -> f64 {
        match self {
            Precision::Fp64 => v,
            Precision::Fp32 => v as f32 as f64,
            Precision::Fp16 => fp16_round(v),
            Precision::Int8 => saturate(v, i8::MIN as f64, i8::MAX as f64),
            Precision::Int16 => saturate(v, i16::MIN as f64, i16::MAX as f64),
            Precision::Int32 => saturate(v, i32::MIN as f64, i32::MAX as f64),
            Precision::Int64 => {
                // i64 range exceeds f64's exact-integer range; clamp to the
                // f64-representable envelope.
                saturate(v, -(2f64.powi(63)), 2f64.powi(63) - 1.0)
            }
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Int8 => "INT8",
            Precision::Int16 => "INT16",
            Precision::Int32 => "INT32",
            Precision::Int64 => "INT64",
            Precision::Fp16 => "FP16",
            Precision::Fp32 => "FP32",
            Precision::Fp64 => "FP64",
        };
        f.write_str(s)
    }
}

impl Default for Precision {
    /// The paper evaluates SpTRSV and linear solvers in double precision.
    fn default() -> Self {
        Precision::Fp64
    }
}

fn saturate(v: f64, lo: f64, hi: f64) -> f64 {
    v.round().clamp(lo, hi)
}

fn fp16_round(v: f64) -> f64 {
    if !v.is_finite() {
        return v;
    }
    if v == 0.0 {
        return 0.0;
    }
    let max_fp16 = 65504.0;
    if v.abs() > max_fp16 {
        return v.signum() * f64::INFINITY;
    }
    // Round the mantissa to 10 bits by scaling to the binade.
    let exp = v.abs().log2().floor();
    let scale = 2f64.powf(10.0 - exp);
    (v * scale).round() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_table_viii() {
        assert_eq!(Precision::Int8.lanes(), 32);
        assert_eq!(Precision::Int16.lanes(), 16);
        assert_eq!(Precision::Fp16.lanes(), 16);
        assert_eq!(Precision::Int32.lanes(), 8);
        assert_eq!(Precision::Fp32.lanes(), 8);
        assert_eq!(Precision::Int64.lanes(), 4);
        assert_eq!(Precision::Fp64.lanes(), 4);
    }

    #[test]
    fn quantize_int8_saturates() {
        assert_eq!(Precision::Int8.quantize(1000.0), 127.0);
        assert_eq!(Precision::Int8.quantize(-1000.0), -128.0);
        assert_eq!(Precision::Int8.quantize(3.4), 3.0);
    }

    #[test]
    fn quantize_fp32_roundtrips_small_values() {
        let v = 1.25;
        assert_eq!(Precision::Fp32.quantize(v), v);
    }

    #[test]
    fn quantize_fp16_loses_precision() {
        let v = 1.0 + 1e-6;
        assert_eq!(Precision::Fp16.quantize(v), 1.0);
        // But representable values survive.
        assert_eq!(Precision::Fp16.quantize(1.5), 1.5);
        assert_eq!(Precision::Fp16.quantize(0.0), 0.0);
    }

    #[test]
    fn fp16_overflow_is_infinite() {
        assert!(Precision::Fp16.quantize(1e6).is_infinite());
    }

    #[test]
    fn display_names() {
        assert_eq!(Precision::Fp64.to_string(), "FP64");
        assert_eq!(Precision::Int8.to_string(), "INT8");
    }

    #[test]
    fn default_is_fp64() {
        assert_eq!(Precision::default(), Precision::Fp64);
    }
}
