//! Recursive block decomposition for SpTRSV (paper §VI-A).
//!
//! The triangular matrix `L` is split as
//!
//! ```text
//! L = | L0  O  |        L0 x0 = b0            (recursive SpTRSV)
//!     | M   L1 |        b1' = b1 - M x0       (SpMV)
//!                       L1 x1 = b1'           (recursive SpTRSV)
//! ```
//!
//! recursively until each diagonal block fits the hardware limit (one memory
//! row of input/output vector per bank — dimension 32,768 for FP64 with the
//! paper's 256 KB aggregate row). The plan linearizes the recursion into a
//! step list the host controller replays: diagonal `Solve` steps run the
//! in-PIM SpTRSV kernel, off-diagonal `Update` steps run the SpMV kernel.

use crate::triangular::{Triangle, UnitTriangular};
use crate::{Coo, SparseError};
use serde::{Deserialize, Serialize};

/// One step of the linearized block solve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockStep {
    /// Solve the diagonal triangular block covering rows/cols `lo..hi`.
    Solve {
        /// Block start (inclusive).
        lo: usize,
        /// Block end (exclusive).
        hi: usize,
    },
    /// `b[rows] -= M · x[cols]` for the off-diagonal block `M`.
    Update {
        /// Target row range start.
        row_lo: usize,
        /// Target row range end (exclusive).
        row_hi: usize,
        /// Source column range start.
        col_lo: usize,
        /// Source column range end (exclusive).
        col_hi: usize,
    },
}

/// The full plan: ordered steps plus the source triangle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPlan {
    triangle: Triangle,
    n: usize,
    max_block: usize,
    steps: Vec<BlockStep>,
}

impl BlockPlan {
    /// Build the plan for a triangular matrix of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `max_block == 0`.
    #[must_use]
    pub fn build(triangle: Triangle, n: usize, max_block: usize) -> Self {
        assert!(max_block > 0, "max_block must be positive");
        let mut steps = Vec::new();
        if n > 0 {
            recurse(triangle, 0, n, max_block, &mut steps);
        }
        BlockPlan {
            triangle,
            n,
            max_block,
            steps,
        }
    }

    /// The linearized steps in execution order.
    #[must_use]
    pub fn steps(&self) -> &[BlockStep] {
        &self.steps
    }

    /// Dimension of the planned matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Block-size limit used for the plan.
    #[must_use]
    pub fn max_block(&self) -> usize {
        self.max_block
    }

    /// Which triangle the plan solves.
    #[must_use]
    pub fn triangle(&self) -> Triangle {
        self.triangle
    }

    /// Number of diagonal `Solve` steps.
    #[must_use]
    pub fn num_solves(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, BlockStep::Solve { .. }))
            .count()
    }

    /// Number of off-diagonal `Update` (SpMV) steps.
    #[must_use]
    pub fn num_updates(&self) -> usize {
        self.steps.len() - self.num_solves()
    }

    /// Execute the plan on the host with reference kernels — the golden
    /// model the PIM execution is verified against.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b.len() != dim` or the
    /// matrix dimension disagrees with the plan.
    pub fn execute_reference(
        &self,
        t: &UnitTriangular,
        b: &[f64],
    ) -> Result<Vec<f64>, SparseError> {
        if t.dim() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: t.dim(),
            });
        }
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        let mut x = b.to_vec();
        for step in &self.steps {
            match *step {
                BlockStep::Solve { lo, hi } => {
                    let block = t.diagonal_block(lo, hi);
                    let solved = block.solve_colwise(&x[lo..hi])?;
                    x[lo..hi].copy_from_slice(&solved);
                }
                BlockStep::Update {
                    row_lo,
                    row_hi,
                    col_lo,
                    col_hi,
                } => {
                    let m: Coo = t.strict().submatrix(row_lo, row_hi, col_lo, col_hi);
                    let xs = &x[col_lo..col_hi];
                    let y = m.spmv(xs);
                    for (i, v) in y.into_iter().enumerate() {
                        x[row_lo + i] -= v;
                    }
                }
            }
        }
        Ok(x)
    }
}

fn recurse(triangle: Triangle, lo: usize, hi: usize, max_block: usize, steps: &mut Vec<BlockStep>) {
    let n = hi - lo;
    if n <= max_block {
        steps.push(BlockStep::Solve { lo, hi });
        return;
    }
    let mid = lo + n / 2;
    match triangle {
        Triangle::Lower => {
            // Solve L0 first, then b1 -= M x0, then L1.
            recurse(triangle, lo, mid, max_block, steps);
            steps.push(BlockStep::Update {
                row_lo: mid,
                row_hi: hi,
                col_lo: lo,
                col_hi: mid,
            });
            recurse(triangle, mid, hi, max_block, steps);
        }
        Triangle::Upper => {
            // For U, the trailing block solves first; M sits above the
            // diagonal (rows lo..mid, cols mid..hi).
            recurse(triangle, mid, hi, max_block, steps);
            steps.push(BlockStep::Update {
                row_lo: lo,
                row_hi: mid,
                col_lo: mid,
                col_hi: hi,
            });
            recurse(triangle, lo, mid, max_block, steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::triangular::unit_triangular_from;

    fn random_lower(n: usize, salt: u64) -> UnitTriangular {
        let a = gen::rmat_seeded(n, 6, salt, 42);
        unit_triangular_from(&a, Triangle::Lower).unwrap()
    }

    #[test]
    fn small_matrix_single_solve() {
        let plan = BlockPlan::build(Triangle::Lower, 10, 16);
        assert_eq!(plan.steps(), &[BlockStep::Solve { lo: 0, hi: 10 }]);
    }

    #[test]
    fn split_emits_solve_update_solve() {
        let plan = BlockPlan::build(Triangle::Lower, 20, 10);
        assert_eq!(
            plan.steps(),
            &[
                BlockStep::Solve { lo: 0, hi: 10 },
                BlockStep::Update {
                    row_lo: 10,
                    row_hi: 20,
                    col_lo: 0,
                    col_hi: 10
                },
                BlockStep::Solve { lo: 10, hi: 20 },
            ]
        );
    }

    #[test]
    fn deep_recursion_counts() {
        let plan = BlockPlan::build(Triangle::Lower, 64, 8);
        assert_eq!(plan.num_solves(), 8);
        assert_eq!(plan.num_updates(), 7);
    }

    #[test]
    fn block_solve_matches_direct_lower() {
        let t = random_lower(100, 3);
        let b = gen::dense_vector(100, 17);
        let direct = t.solve_colwise(&b).unwrap();
        for max_block in [7, 16, 33, 100] {
            let plan = BlockPlan::build(Triangle::Lower, 100, max_block);
            let got = plan.execute_reference(&t, &b).unwrap();
            for (g, d) in got.iter().zip(&direct) {
                assert!((g - d).abs() < 1e-9, "block={max_block}: {g} vs {d}");
            }
        }
    }

    #[test]
    fn block_solve_matches_direct_upper() {
        let a = gen::rmat_seeded(80, 5, 9, 42);
        let t = unit_triangular_from(&a, Triangle::Upper).unwrap();
        let b = gen::dense_vector(80, 23);
        let direct = t.solve_colwise(&b).unwrap();
        let plan = BlockPlan::build(Triangle::Upper, 80, 13);
        let got = plan.execute_reference(&t, &b).unwrap();
        for (g, d) in got.iter().zip(&direct) {
            assert!((g - d).abs() < 1e-9);
        }
    }

    #[test]
    fn upper_plan_solves_trailing_block_first() {
        let plan = BlockPlan::build(Triangle::Upper, 20, 10);
        assert_eq!(plan.steps()[0], BlockStep::Solve { lo: 10, hi: 20 });
        assert!(matches!(
            plan.steps()[1],
            BlockStep::Update { row_lo: 0, .. }
        ));
    }

    #[test]
    fn empty_plan() {
        let plan = BlockPlan::build(Triangle::Lower, 0, 8);
        assert!(plan.steps().is_empty());
        let t = UnitTriangular::from_strict(Triangle::Lower, Coo::new(0, 0)).unwrap();
        assert!(plan.execute_reference(&t, &[]).unwrap().is_empty());
    }

    #[test]
    fn mismatched_dims_rejected() {
        let t = random_lower(10, 1);
        let plan = BlockPlan::build(Triangle::Lower, 20, 8);
        assert!(plan.execute_reference(&t, &[0.0; 20]).is_err());
    }
}
