//! Deterministic synthetic sparse-matrix generators.
//!
//! The paper evaluates on 26 SuiteSparse/SNAP matrices (Table IX). Those
//! files are not redistributable here, so [`crate::suite`] instantiates
//! these generators with each matrix's published dimension and density. The
//! generator *family* is chosen per matrix class because pSyncPIM's
//! behaviour depends on the row-length distribution:
//!
//! * [`rmat`] — recursive-matrix power-law graphs (SNAP web/social graphs),
//! * [`banded_fem`] — banded finite-element stencils (structural/FEM
//!   matrices such as `cant`, `pwtk`, `parabolic_fem`),
//! * [`erdos_renyi`] — uniform random sparsity (chemical-process matrices),
//! * [`block_diag_fem`] — clustered multi-body FEM (e.g. `crankseg_2`).
//!
//! All generators are deterministic given a seed.

use crate::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default seed used by the un-suffixed convenience constructors.
pub const DEFAULT_SEED: u64 = 0x5EED_0001;

/// R-MAT graph generator (Chakrabarti et al.): `n x n`, about
/// `n * avg_deg` edges, with the canonical (0.57, 0.19, 0.19, 0.05)
/// quadrant probabilities producing a power-law degree distribution.
///
/// `n` is rounded up to a power of two internally; indices above `n - 1`
/// are redrawn so the result is exactly `n x n`.
#[must_use]
pub fn rmat(n: usize, avg_deg: usize, seed_salt: u64) -> Coo {
    rmat_seeded(n, avg_deg, seed_salt, DEFAULT_SEED)
}

/// [`rmat`] with an explicit base seed.
#[must_use]
pub fn rmat_seeded(n: usize, avg_deg: usize, seed_salt: u64, seed: u64) -> Coo {
    let mut rng = StdRng::seed_from_u64(seed ^ seed_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let levels = (n.max(2) as f64).log2().ceil() as u32;
    let target = n * avg_deg;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut m = Coo::new(n, n);
    let mut tries = 0usize;
    while m.nnz() < target && tries < target * 10 {
        tries += 1;
        let (mut r, mut cidx) = (0usize, 0usize);
        for _ in 0..levels {
            r <<= 1;
            cidx <<= 1;
            let p: f64 = rng.gen();
            if p < a {
                // top-left
            } else if p < a + b {
                cidx |= 1;
            } else if p < a + b + c {
                r |= 1;
            } else {
                r |= 1;
                cidx |= 1;
            }
        }
        if r >= n || cidx >= n {
            continue;
        }
        let val = 1.0 + rng.gen::<f64>();
        m.push(r as u32, cidx as u32, val);
    }
    m.coalesce();
    m
}

/// Uniform Erdős–Rényi sparsity: each of `nnz` entries drawn uniformly.
#[must_use]
pub fn erdos_renyi(nrows: usize, ncols: usize, nnz: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0xA24B_AED4_963E_E407));
    let mut m = Coo::new(nrows, ncols);
    for _ in 0..nnz {
        let r = rng.gen_range(0..nrows) as u32;
        let c = rng.gen_range(0..ncols) as u32;
        m.push(r, c, rng.gen_range(-1.0..1.0));
    }
    m.coalesce();
    m
}

/// Banded FEM-like stencil: each row has entries within `bandwidth` of the
/// diagonal, `per_row` of them, plus the diagonal itself. Mimics
/// structural-mechanics and discretized-PDE matrices (near-diagonal
/// concentration, low level-count triangles).
#[must_use]
pub fn banded_fem(n: usize, bandwidth: usize, per_row: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    let mut m = Coo::new(n, n);
    for i in 0..n {
        m.push(i as u32, i as u32, 4.0 + rng.gen::<f64>());
        for _ in 0..per_row {
            let off = rng.gen_range(1..=bandwidth.max(1)) as i64;
            let sign = if rng.gen::<bool>() { 1 } else { -1 };
            let j = i as i64 + sign * off;
            if j >= 0 && (j as usize) < n {
                m.push(i as u32, j as u32, -rng.gen::<f64>());
            }
        }
    }
    m.coalesce();
    m
}

/// Block-diagonal FEM with dense-ish diagonal blocks plus sparse coupling —
/// mimics multibody matrices like `crankseg_2` (high density, clustered).
#[must_use]
pub fn block_diag_fem(n: usize, block: usize, fill: f64, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0x1656_67B1_9E37_79F9));
    let mut m = Coo::new(n, n);
    let nblocks = n.div_ceil(block);
    for b in 0..nblocks {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        for i in lo..hi {
            m.push(i as u32, i as u32, 4.0 + rng.gen::<f64>());
            for j in lo..hi {
                if i != j && rng.gen::<f64>() < fill {
                    m.push(i as u32, j as u32, -rng.gen::<f64>());
                }
            }
        }
        // Sparse coupling to the next block.
        if hi < n {
            for _ in 0..(block / 8).max(1) {
                let i = rng.gen_range(lo..hi) as u32;
                let j = rng.gen_range(hi..(hi + block).min(n)) as u32;
                m.push(i, j, -0.1);
                m.push(j, i, -0.1);
            }
        }
    }
    m.coalesce();
    m
}

/// Scale-free "web-like" matrix where a few hub columns are extremely dense
/// (mimics `Stanford`, `webbase-1M`): column `c` is a hub with probability
/// proportional to a Zipf weight.
#[must_use]
pub fn web_hubs(n: usize, nnz: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0x27D4_EB2F_1656_67C5));
    let mut m = Coo::new(n, n);
    for _ in 0..nnz {
        let r = rng.gen_range(0..n) as u32;
        // Zipf-ish column: invert a power of a uniform draw.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let c = ((u.powf(3.0) * n as f64) as usize).min(n - 1) as u32;
        m.push(r, c, 1.0);
    }
    m.coalesce();
    m
}

/// Layered DAG matrix: rows split into `layers` index-contiguous layers;
/// each row (outside layer 0) draws `deg` dependencies uniformly from the
/// *previous* layer. The lower triangle therefore has exactly `layers`
/// level sets, each huge — the `parabolic_fem` shape whose per-level
/// parallelism exceeds pSyncPIM's memory-row boundary while the GPU eats
/// it in one launch (paper §VII-C).
#[must_use]
pub fn layered_dag(n: usize, deg: usize, layers: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0xB492_B66F_BE98_F273));
    let layers = layers.clamp(2, n.max(2));
    let layer_len = n.div_ceil(layers);
    let mut m = Coo::new(n, n);
    for i in 0..n {
        m.push(i as u32, i as u32, 4.0 + rng.gen::<f64>());
        let layer = i / layer_len;
        if layer == 0 {
            continue;
        }
        let lo = (layer - 1) * layer_len;
        let hi = (layer * layer_len).min(n);
        for _ in 0..deg {
            let j = rng.gen_range(lo..hi) as u32;
            let v = -rng.gen::<f64>();
            // Symmetric pattern: both triangles carry the layered shape.
            m.push(i as u32, j, v);
            m.push(j, i as u32, v);
        }
    }
    m.coalesce();
    m
}

/// A dense vector with reproducible pseudo-random contents in `[-1, 1)`.
#[must_use]
pub fn dense_vector(n: usize, seed_salt: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0x9E37_79B9));
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(128, 4, 1);
        let b = rmat(128, 4, 1);
        assert_eq!(a, b);
        let c = rmat(128, 4, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_shape_and_degree() {
        let m = rmat(100, 4, 3);
        assert_eq!(m.nrows(), 100);
        assert_eq!(m.ncols(), 100);
        // Coalescing removes duplicates, so nnz <= target but near it.
        assert!(m.nnz() > 100, "nnz={}", m.nnz());
        assert!(m.nnz() <= 400);
    }

    #[test]
    fn rmat_is_skewed() {
        let m = rmat(256, 8, 4);
        let counts = m.row_counts();
        let max = *counts.iter().max().unwrap();
        let avg = m.nnz() as f64 / 256.0;
        assert!(
            max as f64 > 2.0 * avg,
            "power-law skew expected: max={max} avg={avg}"
        );
    }

    #[test]
    fn erdos_renyi_counts() {
        let m = erdos_renyi(50, 70, 200, 9);
        assert_eq!(m.nrows(), 50);
        assert_eq!(m.ncols(), 70);
        assert!(m.nnz() <= 200 && m.nnz() > 150);
    }

    #[test]
    fn banded_stays_in_band() {
        let bw = 5usize;
        let m = banded_fem(64, bw, 4, 2);
        for e in m.iter() {
            let d = (e.row as i64 - e.col as i64).unsigned_abs() as usize;
            assert!(d <= bw, "entry ({}, {}) outside band", e.row, e.col);
        }
        // Diagonal fully populated.
        assert!((0..64).all(|i| m.iter().any(|e| e.row == i && e.col == i)));
    }

    #[test]
    fn block_diag_has_diagonal() {
        let m = block_diag_fem(60, 16, 0.3, 3);
        assert_eq!(m.nrows(), 60);
        assert!((0..60).all(|i| m.iter().any(|e| e.row == i && e.col == i)));
    }

    #[test]
    fn web_hubs_is_column_skewed() {
        let m = web_hubs(256, 2000, 5);
        let counts = m.col_counts();
        let max = *counts.iter().max().unwrap();
        let avg = m.nnz() as f64 / 256.0;
        assert!(
            max as f64 > 4.0 * avg,
            "hub skew expected: max={max} avg={avg}"
        );
    }

    #[test]
    fn layered_dag_has_few_levels() {
        let m = layered_dag(400, 3, 8, 4);
        // Dependencies only connect adjacent layers (both triangles).
        for e in m.iter() {
            if e.row != e.col {
                let li = e.row as usize / 50;
                let lj = e.col as usize / 50;
                assert_eq!(li.abs_diff(lj), 1, "entry ({}, {})", e.row, e.col);
            }
        }
    }

    #[test]
    fn dense_vector_deterministic_and_bounded() {
        let a = dense_vector(100, 1);
        assert_eq!(a, dense_vector(100, 1));
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
