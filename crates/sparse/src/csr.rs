//! Compressed sparse row (CSR) format.
//!
//! The host-side preprocessing (level analysis, partitioning, reference
//! kernels, graph applications) works on CSR; the PIM banks themselves store
//! COO (paper §IV-C).

use crate::{Coo, SparseError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sparse matrix in compressed sparse row form.
///
/// Column indices within each row are sorted ascending.
///
/// ```
/// use psim_sparse::{Coo, Csr};
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 1, 2.0);
/// coo.push(1, 0, 3.0);
/// let csr = Csr::from(&coo);
/// assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(1, 2.0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Build from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Parse`] when array lengths are inconsistent or
    /// [`SparseError::IndexOutOfBounds`] when a column index is invalid.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != nrows + 1
            || col_idx.len() != values.len()
            || row_ptr.last().copied().unwrap_or(0) != col_idx.len()
        {
            return Err(SparseError::Parse(
                "inconsistent CSR array lengths".to_string(),
            ));
        }
        if let Some(&c) = col_idx.iter().find(|&&c| c as usize >= ncols) {
            return Err(SparseError::IndexOutOfBounds {
                row: 0,
                col: c as usize,
                nrows,
                ncols,
            });
        }
        Ok(Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An empty `nrows x ncols` matrix.
    #[must_use]
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of dimension `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Storage footprint at the given value precision: values plus 4-byte
    /// column indices plus 8-byte row pointers (cf.
    /// [`Coo::storage_bytes`], which pays a 4-byte row id per entry).
    #[must_use]
    pub fn storage_bytes(&self, precision: crate::Precision) -> usize {
        self.values.len() * precision.bytes() + self.col_idx.len() * 4 + self.row_ptr.len() * 8
    }

    /// Row pointer array (`nrows + 1` entries).
    #[must_use]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[must_use]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate over `(col, value)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of non-zeros in row `r`.
    #[must_use]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(r, c)` if stored.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        let seg = &self.col_idx[lo..hi];
        seg.binary_search(&(c as u32))
            .ok()
            .map(|i| self.values[lo + i])
    }

    /// Reference sparse matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "spmv operand length mismatch");
        let mut y = vec![0.0; self.nrows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        y
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Csr {
        // Counting sort by column.
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts.clone();
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let dst = cursor[c];
                cursor[c] += 1;
                col_idx[dst] = r as u32;
                values[dst] = v;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// Permute rows and columns symmetrically: `B[i, j] = A[perm[i], perm[j]]`.
    ///
    /// `perm[i]` gives the *old* index placed at new position `i`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `perm.len() != nrows`.
    #[must_use]
    pub fn permute_symmetric(&self, perm: &[usize]) -> Csr {
        assert_eq!(self.nrows, self.ncols, "symmetric permutation needs square");
        assert_eq!(perm.len(), self.nrows);
        let mut inv = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let mut coo = Coo::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                coo.push(inv[r] as u32, inv[c] as u32, v);
            }
        }
        Csr::from(&coo)
    }

    /// Maximum non-zeros in any row (load-imbalance indicator).
    #[must_use]
    pub fn max_row_nnz(&self) -> usize {
        (0..self.nrows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Csr {}x{} nnz={}", self.nrows, self.ncols, self.nnz())
    }
}

impl From<&Coo> for Csr {
    fn from(coo: &Coo) -> Self {
        let mut row_ptr = vec![0usize; coo.nrows() + 1];
        for e in coo.iter() {
            row_ptr[e.row as usize + 1] += 1;
        }
        for i in 0..coo.nrows() {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = coo.nnz();
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0; nnz];
        let mut cursor = row_ptr.clone();
        for e in coo.iter() {
            let dst = cursor[e.row as usize];
            cursor[e.row as usize] += 1;
            col_idx[dst] = e.col;
            values[dst] = e.val;
        }
        // Sort columns within each row.
        for r in 0..coo.nrows() {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            let mut pairs: Vec<(u32, f64)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            pairs.sort_by_key(|&(c, _)| c);
            for (i, (c, v)) in pairs.into_iter().enumerate() {
                col_idx[lo + i] = c;
                values[lo + i] = v;
            }
        }
        Csr {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 2, 2.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        Csr::from(&coo)
    }

    #[test]
    fn conversion_sorts_columns() {
        let m = sample();
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn get_finds_stored_values() {
        let m = sample();
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(2, 0), Some(4.0));
    }

    #[test]
    fn spmv_matches_coo() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(Csr::from(&coo).spmv(&x), coo.spmv(&x));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn identity_spmv_is_noop() {
        let i = Csr::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.spmv(&x), x);
    }

    #[test]
    fn permute_symmetric_reverses() {
        let m = sample();
        let perm: Vec<usize> = (0..3).rev().collect();
        let p = m.permute_symmetric(&perm);
        // A[2,0]=4 moves to B[0,2].
        assert_eq!(p.get(0, 2), Some(4.0));
        // Applying the inverse (same reversal) restores.
        assert_eq!(p.permute_symmetric(&perm), m);
    }

    #[test]
    fn from_raw_validates() {
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(Csr::from_raw(2, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn coo_roundtrip() {
        let m = sample();
        let coo = Coo::from(&m);
        assert_eq!(Csr::from(&coo), m);
    }

    #[test]
    fn max_row_nnz() {
        assert_eq!(sample().max_row_nnz(), 2);
        assert_eq!(Csr::zeros(3, 3).max_row_nnz(), 0);
    }
}
