//! Bitmap sparse format (paper §IV-C and §VIII).
//!
//! Sparse *neural-network* tensors sit at 10–50 % density, where per-entry
//! index metadata dwarfs a one-bit-per-position bitmap; HPC matrices below
//! 1 % density go the other way. The paper argues pSyncPIM should support
//! both — COO for HPC, bitmap for NN layers — with only minor additions to
//! the index calculator. This module provides the format, conversions, a
//! reference SpMV and the footprint model behind that crossover argument.

use crate::{Coo, Precision, SparseError};
use serde::{Deserialize, Serialize};

/// A row-major bitmap sparse matrix: one bit per position plus the
/// non-zero values in scan order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitmapMatrix {
    nrows: usize,
    ncols: usize,
    /// One bit per position, row-major, LSB-first within each word.
    bits: Vec<u64>,
    /// Non-zero values in bitmap scan order.
    values: Vec<f64>,
}

impl BitmapMatrix {
    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether position `(r, c)` holds a non-zero.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn is_set(&self, r: usize, c: usize) -> bool {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        let pos = r * self.ncols + c;
        self.bits[pos / 64] >> (pos % 64) & 1 == 1
    }

    /// Storage footprint in bytes at a value precision: the bitmap plus
    /// packed values (no per-entry indices).
    #[must_use]
    pub fn storage_bytes(&self, precision: Precision) -> usize {
        self.bits.len() * 8 + self.nnz() * precision.bytes()
    }

    /// Reference SpMV `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "spmv operand length mismatch");
        let mut y = vec![0.0; self.nrows];
        let mut vi = 0usize;
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, &xc) in x.iter().enumerate() {
                let pos = r * self.ncols + c;
                if self.bits[pos / 64] >> (pos % 64) & 1 == 1 {
                    acc += self.values[vi] * xc;
                    vi += 1;
                }
            }
            *yr = acc;
        }
        y
    }
}

impl TryFrom<&Coo> for BitmapMatrix {
    type Error = SparseError;

    /// Convert from COO; duplicate coordinates are rejected (a bitmap can
    /// hold one value per position).
    fn try_from(a: &Coo) -> Result<Self, SparseError> {
        let (nrows, ncols) = (a.nrows(), a.ncols());
        let words = (nrows * ncols).div_ceil(64);
        let mut bits = vec![0u64; words];
        let mut sorted = a.clone();
        sorted.sort_row_major();
        let mut values = Vec::with_capacity(sorted.nnz());
        let mut last: Option<(u32, u32)> = None;
        for e in sorted.iter() {
            if last == Some((e.row, e.col)) {
                return Err(SparseError::Parse(format!(
                    "duplicate entry at ({}, {})",
                    e.row, e.col
                )));
            }
            last = Some((e.row, e.col));
            let pos = e.row as usize * ncols + e.col as usize;
            bits[pos / 64] |= 1 << (pos % 64);
            values.push(e.val);
        }
        Ok(BitmapMatrix {
            nrows,
            ncols,
            bits,
            values,
        })
    }
}

impl From<&BitmapMatrix> for Coo {
    fn from(b: &BitmapMatrix) -> Coo {
        let mut coo = Coo::new(b.nrows, b.ncols);
        let mut vi = 0usize;
        for r in 0..b.nrows {
            for c in 0..b.ncols {
                if b.is_set(r, c) {
                    coo.push(r as u32, c as u32, b.values[vi]);
                    vi += 1;
                }
            }
        }
        coo
    }
}

/// The density above which the bitmap format is smaller than COO for a
/// given value precision: COO spends `8 + vb` bytes per non-zero, a bitmap
/// `1/8` byte per *position* plus `vb` per non-zero, so the crossover is
/// `density = 1 / (8 · 8) = 1.56 %` independent of `vb` — matching the
/// paper's "under 1 % density → COO; 10–50 % NN layers → bitmap".
#[must_use]
pub fn bitmap_crossover_density(_precision: Precision) -> f64 {
    // positions/8 < nnz * 8  ⇔  density > 1/64.
    1.0 / 64.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn coo_roundtrip() {
        let mut a = gen::rmat(64, 6, 3);
        a.coalesce();
        let b = BitmapMatrix::try_from(&a).unwrap();
        assert_eq!(b.nnz(), a.nnz());
        let mut back = Coo::from(&b);
        back.sort_row_major();
        let mut orig = a;
        orig.sort_row_major();
        assert_eq!(back, orig);
    }

    #[test]
    fn spmv_matches_coo() {
        let mut a = gen::erdos_renyi(50, 70, 400, 9);
        a.coalesce();
        let b = BitmapMatrix::try_from(&a).unwrap();
        let x = gen::dense_vector(70, 2);
        let want = a.spmv(&x);
        let got = b.spmv(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicates_rejected() {
        let mut a = Coo::new(4, 4);
        a.push(1, 1, 2.0);
        a.push(1, 1, 3.0);
        assert!(BitmapMatrix::try_from(&a).is_err());
    }

    #[test]
    fn footprint_crossover_matches_model() {
        let n = 256usize;
        let p = Precision::Fp64;
        let crossover = bitmap_crossover_density(p);
        for (density, bitmap_wins) in [(0.001, false), (0.005, false), (0.05, true), (0.3, true)] {
            let nnz = ((n * n) as f64 * density) as usize;
            let mut a = gen::erdos_renyi(n, n, nnz, density.to_bits());
            a.coalesce();
            let b = BitmapMatrix::try_from(&a).unwrap();
            let coo_bytes = a.storage_bytes(p);
            let bm_bytes = b.storage_bytes(p);
            assert_eq!(
                bm_bytes < coo_bytes,
                bitmap_wins,
                "density {density}: bitmap {bm_bytes} vs coo {coo_bytes} (crossover {crossover})"
            );
        }
    }

    #[test]
    fn is_set_probes_positions() {
        let mut a = Coo::new(3, 90); // spans more than one u64 word
        a.push(0, 0, 1.0);
        a.push(2, 89, 5.0);
        let b = BitmapMatrix::try_from(&a).unwrap();
        assert!(b.is_set(0, 0));
        assert!(b.is_set(2, 89));
        assert!(!b.is_set(1, 45));
    }
}
