//! Level-set analysis and row reordering for SpTRSV.
//!
//! A triangular solve's rows form a DAG: row `i` depends on every row `j`
//! with a non-zero at `(i, j)` (lower case). Rows at the same *level* are
//! mutually independent and can execute in parallel. The host preprocessor
//! computes the schedule and reorders rows level-by-level (paper §VI-D "Row
//! Reordering") so each all-bank PIM launch covers one level.

use crate::triangular::{Triangle, UnitTriangular};
use crate::Csr;
use serde::{Deserialize, Serialize};

/// The level schedule of a triangular matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelSchedule {
    /// `level_of[i]` = level of row `i` (0-based).
    level_of: Vec<usize>,
    /// Rows grouped by level, ascending.
    levels: Vec<Vec<usize>>,
}

impl LevelSchedule {
    /// Compute the schedule for a unit triangular matrix.
    ///
    /// For a lower triangle, `level(i) = 1 + max(level(j))` over stored
    /// entries `(i, j)`; independent rows get level 0. The upper triangle is
    /// analyzed in reverse row order.
    #[must_use]
    pub fn analyze(t: &UnitTriangular) -> Self {
        let n = t.dim();
        let csr = Csr::from(t.strict());
        let mut level_of = vec![0usize; n];
        let order: Box<dyn Iterator<Item = usize>> = match t.triangle() {
            Triangle::Lower => Box::new(0..n),
            Triangle::Upper => Box::new((0..n).rev()),
        };
        let mut max_level = 0usize;
        for i in order {
            let mut lvl = 0usize;
            for (j, _) in csr.row(i) {
                lvl = lvl.max(level_of[j] + 1);
            }
            level_of[i] = lvl;
            max_level = max_level.max(lvl);
        }
        let mut levels = vec![Vec::new(); max_level + 1];
        match t.triangle() {
            Triangle::Lower => {
                for (i, &l) in level_of.iter().enumerate() {
                    levels[l].push(i);
                }
            }
            Triangle::Upper => {
                for i in (0..n).rev() {
                    levels[level_of[i]].push(i);
                }
            }
        }
        if n == 0 {
            levels.clear();
        }
        LevelSchedule { level_of, levels }
    }

    /// Number of levels (the solve's critical-path length in launches).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level of row `i`.
    #[must_use]
    pub fn level_of(&self, i: usize) -> usize {
        self.level_of[i]
    }

    /// Rows of one level.
    #[must_use]
    pub fn level(&self, l: usize) -> &[usize] {
        &self.levels[l]
    }

    /// Iterate over levels in dependency order.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<usize>> {
        self.levels.iter()
    }

    /// Average rows per level (the parallelism the GPU baseline can exploit
    /// per kernel launch).
    #[must_use]
    pub fn avg_parallelism(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        self.level_of.len() as f64 / self.levels.len() as f64
    }

    /// A symmetric permutation placing rows level-by-level: `perm[new] = old`.
    ///
    /// Within a level, original order is kept (stability keeps the triangle
    /// a triangle after permutation — see the invariant test).
    #[must_use]
    pub fn reorder_permutation(&self) -> Vec<usize> {
        self.levels.iter().flatten().copied().collect()
    }

    /// Check that a schedule order respects dependencies: for every stored
    /// entry `(row, col)`, the producing row `col` is scheduled before the
    /// consuming row `row`. This holds for both triangles because the
    /// schedule lists levels in execution (dependency) order.
    #[must_use]
    pub fn respects_dependencies(&self, t: &UnitTriangular, perm: &[usize]) -> bool {
        let mut pos = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            pos[old] = new;
        }
        t.strict()
            .iter()
            .all(|e| pos[e.col as usize] < pos[e.row as usize])
    }
}

/// Apply the level-order row reordering (paper §VI-D) to a triangular
/// system: rows are renumbered level-by-level, which turns either triangle
/// into a *lower* unit triangular system whose rows within a level are
/// independent. Returns the reordered system and the permutation
/// (`perm[new] = old`) needed to map a solution back.
#[must_use]
pub fn reorder_to_lower(t: &UnitTriangular) -> (UnitTriangular, Vec<usize>) {
    let sched = LevelSchedule::analyze(t);
    let perm = sched.reorder_permutation();
    let mut pos = vec![0usize; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        pos[old] = new;
    }
    let mut strict = crate::Coo::new(t.dim(), t.dim());
    for e in t.strict().iter() {
        // Dependencies always map to earlier positions, so the result is
        // strictly lower triangular for both source triangles.
        strict.push(
            pos[e.row as usize] as u32,
            pos[e.col as usize] as u32,
            e.val,
        );
    }
    let reordered = UnitTriangular::from_strict(Triangle::Lower, strict)
        .expect("level order places dependencies below the diagonal");
    (reordered, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn chain4() -> UnitTriangular {
        // Fully serial: row i depends on i-1.
        let mut s = Coo::new(4, 4);
        s.push(1, 0, 0.1);
        s.push(2, 1, 0.1);
        s.push(3, 2, 0.1);
        UnitTriangular::from_strict(Triangle::Lower, s).unwrap()
    }

    fn diamond() -> UnitTriangular {
        // 0 -> {1, 2} -> 3
        let mut s = Coo::new(4, 4);
        s.push(1, 0, 0.1);
        s.push(2, 0, 0.1);
        s.push(3, 1, 0.1);
        s.push(3, 2, 0.1);
        UnitTriangular::from_strict(Triangle::Lower, s).unwrap()
    }

    #[test]
    fn chain_has_n_levels() {
        let sched = LevelSchedule::analyze(&chain4());
        assert_eq!(sched.num_levels(), 4);
        assert_eq!(sched.avg_parallelism(), 1.0);
    }

    #[test]
    fn diamond_has_three_levels() {
        let sched = LevelSchedule::analyze(&diamond());
        assert_eq!(sched.num_levels(), 3);
        assert_eq!(sched.level(0), &[0]);
        assert_eq!(sched.level(1), &[1, 2]);
        assert_eq!(sched.level(2), &[3]);
    }

    #[test]
    fn identity_pattern_is_one_level() {
        let s = Coo::new(5, 5);
        let t = UnitTriangular::from_strict(Triangle::Lower, s).unwrap();
        let sched = LevelSchedule::analyze(&t);
        assert_eq!(sched.num_levels(), 1);
        assert_eq!(sched.level(0).len(), 5);
    }

    #[test]
    fn permutation_respects_dependencies() {
        let t = diamond();
        let sched = LevelSchedule::analyze(&t);
        let perm = sched.reorder_permutation();
        assert!(sched.respects_dependencies(&t, &perm));
        // A reversed permutation must violate them.
        let bad: Vec<usize> = perm.iter().rev().copied().collect();
        assert!(!sched.respects_dependencies(&t, &bad));
    }

    #[test]
    fn upper_triangle_levels_run_backward() {
        let mut s = Coo::new(3, 3);
        s.push(0, 1, 0.1);
        s.push(1, 2, 0.1);
        let t = UnitTriangular::from_strict(Triangle::Upper, s).unwrap();
        let sched = LevelSchedule::analyze(&t);
        assert_eq!(sched.num_levels(), 3);
        assert_eq!(sched.level(0), &[2]);
        assert_eq!(sched.level(2), &[0]);
        let perm = sched.reorder_permutation();
        assert!(sched.respects_dependencies(&t, &perm));
    }

    #[test]
    fn reorder_to_lower_preserves_solution() {
        let mut s = Coo::new(4, 4);
        s.push(0, 1, 0.5); // upper triangle
        s.push(1, 3, 0.25);
        s.push(2, 3, 0.125);
        let t = UnitTriangular::from_strict(Triangle::Upper, s).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let want = t.solve_colwise(&b).unwrap();
        let (lower, perm) = super::reorder_to_lower(&t);
        assert_eq!(lower.triangle(), Triangle::Lower);
        let pb: Vec<f64> = perm.iter().map(|&old| b[old]).collect();
        let px = lower.solve_colwise(&pb).unwrap();
        let mut x = [0.0; 4];
        for (new, &old) in perm.iter().enumerate() {
            x[old] = px[new];
        }
        for (g, w) in x.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matrix() {
        let t = UnitTriangular::from_strict(Triangle::Lower, Coo::new(0, 0)).unwrap();
        let sched = LevelSchedule::analyze(&t);
        assert_eq!(sched.num_levels(), 0);
    }
}
