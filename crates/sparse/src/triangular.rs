//! Triangular-matrix utilities.
//!
//! pSyncPIM stores *unitriangular* factors with the unit diagonal stripped
//! (paper §VI-B: memory holds `L* = L - I` and `U* = U - I`), so the kernels
//! never divide. This module extracts triangles from general matrices,
//! solves them with reference algorithms (paper Algorithms 1 and 3), and
//! validates the strict-triangle invariant.

use crate::{Coo, Csc, Csr, Entry, SparseError};
use serde::{Deserialize, Serialize};

/// Which triangle of a square matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Triangle {
    /// Lower triangle (`row >= col`); solves run forward.
    Lower,
    /// Upper triangle (`row <= col`); solves run backward.
    Upper,
}

impl Triangle {
    /// The opposite triangle.
    #[must_use]
    pub fn flipped(self) -> Triangle {
        match self {
            Triangle::Lower => Triangle::Upper,
            Triangle::Upper => Triangle::Lower,
        }
    }
}

/// A sparse *unit* triangular matrix stored without its diagonal, the form
/// pSyncPIM maps into DRAM banks.
///
/// Invariant: every stored entry is strictly below (Lower) or strictly above
/// (Upper) the diagonal; the implicit diagonal is all ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitTriangular {
    n: usize,
    triangle: Triangle,
    /// Strictly-triangular entries.
    strict: Coo,
}

impl UnitTriangular {
    /// Build from strictly-triangular entries.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] if `strict` is not `n x n`, or
    /// [`SparseError::Parse`] if any entry violates the strict triangle.
    pub fn from_strict(triangle: Triangle, strict: Coo) -> Result<Self, SparseError> {
        if strict.nrows() != strict.ncols() {
            return Err(SparseError::NotSquare {
                nrows: strict.nrows(),
                ncols: strict.ncols(),
            });
        }
        let ok = strict.iter().all(|e| match triangle {
            Triangle::Lower => e.row > e.col,
            Triangle::Upper => e.row < e.col,
        });
        if !ok {
            return Err(SparseError::Parse(
                "entry violates strict triangle".to_string(),
            ));
        }
        Ok(UnitTriangular {
            n: strict.nrows(),
            triangle,
            strict,
        })
    }

    /// Dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Which triangle this is.
    #[must_use]
    pub fn triangle(&self) -> Triangle {
        self.triangle
    }

    /// Strictly-triangular part (no diagonal), as stored in memory.
    #[must_use]
    pub fn strict(&self) -> &Coo {
        &self.strict
    }

    /// Number of stored (off-diagonal) non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.strict.nnz()
    }

    /// The full matrix including the unit diagonal.
    #[must_use]
    pub fn to_full(&self) -> Coo {
        let mut full = self.strict.clone();
        for i in 0..self.n {
            full.push(i as u32, i as u32, 1.0);
        }
        full
    }

    /// Solve `T x = b` with the row-oriented dot-product algorithm
    /// (paper Algorithm 1, specialized to a unit diagonal so the division
    /// disappears).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `b.len() != dim`.
    pub fn solve_rowwise(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        let csr = Csr::from(&self.strict);
        let mut x = vec![0.0; self.n];
        let order: Box<dyn Iterator<Item = usize>> = match self.triangle {
            Triangle::Lower => Box::new(0..self.n),
            Triangle::Upper => Box::new((0..self.n).rev()),
        };
        for i in order {
            let mut s = 0.0;
            for (c, v) in csr.row(i) {
                s += v * x[c];
            }
            x[i] = b[i] - s;
        }
        Ok(x)
    }

    /// Solve `T x = b` with the column-sweep scalar-multiplication algorithm
    /// (paper Algorithm 3) — the dataflow the PIM kernel executes. For a
    /// unit diagonal, after processing column `i`, `x[i]` is final.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `b.len() != dim`.
    pub fn solve_colwise(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        let csc = Csc::from(&self.strict);
        let mut x = b.to_vec();
        let order: Box<dyn Iterator<Item = usize>> = match self.triangle {
            Triangle::Lower => Box::new(0..self.n),
            Triangle::Upper => Box::new((0..self.n).rev()),
        };
        for i in order {
            let scale = x[i];
            if scale == 0.0 {
                continue;
            }
            for (r, v) in csc.col(i) {
                x[r] -= scale * v;
            }
        }
        Ok(x)
    }

    /// Multiply `y = T x` (including the unit diagonal). Used to verify
    /// solves: `T.solve(T.matvec(x)) == x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = x.to_vec();
        for e in self.strict.iter() {
            y[e.row as usize] += e.val * x[e.col as usize];
        }
        y
    }

    /// Extract the sub-triangle covering `lo..hi` on the diagonal
    /// (used by the recursive block decomposition).
    #[must_use]
    pub fn diagonal_block(&self, lo: usize, hi: usize) -> UnitTriangular {
        UnitTriangular {
            n: hi - lo,
            triangle: self.triangle,
            strict: self.strict.submatrix(lo, hi, lo, hi),
        }
    }
}

/// Extract the lower triangle of a general square matrix, *including* its
/// diagonal, as `(strict_lower, diagonal)`.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for non-square input.
pub fn split_lower(a: &Coo) -> Result<(Coo, Vec<f64>), SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut strict = Coo::new(n, n);
    let mut diag = vec![0.0; n];
    for e in a.iter() {
        if e.row > e.col {
            strict.push(e.row, e.col, e.val);
        } else if e.row == e.col {
            diag[e.row as usize] += e.val;
        }
    }
    Ok((strict, diag))
}

/// Generate a unit triangular matrix from an arbitrary square matrix's
/// pattern: keep the strict triangle's entries, scaled so the solve is
/// well-conditioned (|off-diagonal| row sums < 1).
///
/// This is how the benchmark suite derives SpTRSV operands from the general
/// matrices of Table IX when no factorization is requested.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for non-square input.
pub fn unit_triangular_from(a: &Coo, triangle: Triangle) -> Result<UnitTriangular, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut strict = Coo::new(n, n);
    for e in a.iter() {
        let keep = match triangle {
            Triangle::Lower => e.row > e.col,
            Triangle::Upper => e.row < e.col,
        };
        if keep {
            strict.push(e.row, e.col, e.val);
        }
    }
    strict.coalesce();
    // Scale rows so sum |row| <= 0.5: keeps solves numerically tame.
    let mut row_abs = vec![0.0f64; n];
    for e in strict.iter() {
        row_abs[e.row as usize] += e.val.abs();
    }
    let entries: Vec<Entry> = strict
        .iter()
        .map(|e| {
            let s = row_abs[e.row as usize];
            let val = if s > 0.5 { e.val * 0.5 / s } else { e.val };
            Entry::new(e.row, e.col, val)
        })
        .collect();
    UnitTriangular::from_strict(triangle, Coo::from_entries(n, n, entries)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower3() -> UnitTriangular {
        // L = [1 0 0; 2 1 0; 3 4 1] with the diagonal stripped.
        let mut strict = Coo::new(3, 3);
        strict.push(1, 0, 2.0);
        strict.push(2, 0, 3.0);
        strict.push(2, 1, 4.0);
        UnitTriangular::from_strict(Triangle::Lower, strict).unwrap()
    }

    #[test]
    fn rowwise_solve_lower() {
        let l = lower3();
        // b = L * [1, 1, 1] = [1, 3, 8]
        let x = l.solve_rowwise(&[1.0, 3.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn colwise_solve_matches_rowwise() {
        let l = lower3();
        let b = vec![2.0, -1.0, 0.5];
        assert_eq!(l.solve_rowwise(&b).unwrap(), l.solve_colwise(&b).unwrap());
    }

    #[test]
    fn matvec_solve_roundtrip() {
        let l = lower3();
        let x = vec![1.5, -2.0, 3.0];
        let b = l.matvec(&x);
        let got = l.solve_colwise(&b).unwrap();
        for (a, b) in got.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_solve() {
        let mut strict = Coo::new(3, 3);
        strict.push(0, 1, 2.0);
        strict.push(0, 2, 1.0);
        strict.push(1, 2, -1.0);
        let u = UnitTriangular::from_strict(Triangle::Upper, strict).unwrap();
        let x = vec![1.0, 2.0, 3.0];
        let b = u.matvec(&x);
        let got = u.solve_colwise(&b).unwrap();
        for (a, b) in got.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(u.solve_rowwise(&b).unwrap(), got);
    }

    #[test]
    fn strict_invariant_enforced() {
        let mut bad = Coo::new(2, 2);
        bad.push(0, 0, 1.0); // diagonal entry not allowed
        assert!(UnitTriangular::from_strict(Triangle::Lower, bad).is_err());
        let mut wrong_side = Coo::new(2, 2);
        wrong_side.push(0, 1, 1.0);
        assert!(UnitTriangular::from_strict(Triangle::Lower, wrong_side).is_err());
    }

    #[test]
    fn diagonal_block_extracts() {
        let l = lower3();
        let b = l.diagonal_block(1, 3);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.nnz(), 1); // only (2,1) stays inside rows/cols 1..3
        assert_eq!(b.strict().entries()[0], Entry::new(1, 0, 4.0));
    }

    #[test]
    fn split_lower_separates_diag() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 5.0);
        a.push(1, 0, 2.0);
        a.push(1, 1, 7.0);
        a.push(0, 1, 9.0); // upper, dropped
        let (strict, diag) = split_lower(&a).unwrap();
        assert_eq!(strict.nnz(), 1);
        assert_eq!(diag, vec![5.0, 7.0]);
    }

    #[test]
    fn unit_triangular_from_scales_rows() {
        let mut a = Coo::new(3, 3);
        a.push(2, 0, 10.0);
        a.push(2, 1, 10.0);
        a.push(0, 2, 99.0); // upper, dropped for Lower
        let t = unit_triangular_from(&a, Triangle::Lower).unwrap();
        let row2: f64 = t
            .strict()
            .iter()
            .filter(|e| e.row == 2)
            .map(|e| e.val.abs())
            .sum();
        assert!((row2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let l = lower3();
        assert!(matches!(
            l.solve_rowwise(&[1.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn flipped() {
        assert_eq!(Triangle::Lower.flipped(), Triangle::Upper);
        assert_eq!(Triangle::Upper.flipped(), Triangle::Lower);
    }
}
