//! Adversarial matrix shapes for the differential-test corpus.
//!
//! The [`crate::gen`] generators mirror the paper's *benchmark* suite;
//! these generators instead target the structures most likely to break a
//! layout or partitioner: extreme row skew (one bank gets everything),
//! arrow matrices (a dense border row/column crossing every column
//! block), near-dense tiles (blocked formats at fill ≈ 1), and
//! empty-row/column extremes (the `PartitionStats::imbalance` NaN
//! regression, zero-column compression with nothing to compress).
//!
//! Each shape is deterministic given a seed salt, following the
//! [`crate::gen`] idiom, and [`suite`] names them all so test corpora and
//! bench grids iterate one list.

use crate::gen::DEFAULT_SEED;
use crate::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Power-law hub *rows*: `hubs` rows carry almost all of the `nnz`
/// budget (columns uniform), the rest get one entry each. Row-balancing
/// 1D splits put entire hubs on single banks; the wave bound is then the
/// hub, stressing `LeastLoaded` placement and 2D column splitting.
#[must_use]
pub fn power_law_hubs(n: usize, nnz: usize, hubs: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0x8538_ECB5_BD45_6EA3));
    let hubs = hubs.clamp(1, n);
    let mut m = Coo::new(n, n);
    // One entry per non-hub row keeps every row live (no trivial empties
    // here — empty_extremes covers those).
    for i in hubs..n {
        m.push(i as u32, rng.gen_range(0..n) as u32, 1.0 + rng.gen::<f64>());
    }
    let budget = nnz.saturating_sub(n - hubs);
    for k in 0..budget {
        // Zipf-ish hub choice: hub 0 is the heaviest.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let h = ((u.powf(2.0) * hubs as f64) as usize).min(hubs - 1);
        let _ = k;
        m.push(
            h as u32,
            rng.gen_range(0..n) as u32,
            rng.gen_range(-1.0..1.0),
        );
    }
    m.coalesce();
    m
}

/// Arrow matrix: dense first row, dense first column, dense diagonal,
/// plus a sprinkle of off-pattern noise. The border row intersects
/// *every* column block of a 2D scheme, and the border column is one
/// giant hub — the worst case for equally-wide `Grid2D` cuts.
#[must_use]
pub fn arrow(n: usize, noise: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0x94D0_49BB_1331_11EB));
    let mut m = Coo::new(n, n);
    for i in 0..n {
        m.push(i as u32, i as u32, 4.0 + rng.gen::<f64>());
        if i > 0 {
            m.push(0, i as u32, -rng.gen::<f64>());
            m.push(i as u32, 0, -rng.gen::<f64>());
        }
    }
    for _ in 0..noise {
        let r = rng.gen_range(0..n) as u32;
        let c = rng.gen_range(0..n) as u32;
        m.push(r, c, rng.gen_range(-1.0..1.0));
    }
    m.coalesce();
    m
}

/// A few nearly-dense `block × block` tiles scattered on an otherwise
/// empty matrix — block fill ratio close to 1 inside the tiles, so a
/// blocked format should win outright while element formats pay per-entry
/// metadata for every slot.
#[must_use]
pub fn near_dense_blocks(n: usize, block: usize, tiles: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let block = block.clamp(1, n);
    let grid = n / block;
    let mut m = Coo::new(n, n);
    for _ in 0..tiles.max(1) {
        let br = rng.gen_range(0..grid.max(1));
        let bc = rng.gen_range(0..grid.max(1));
        for lr in 0..block {
            for lc in 0..block {
                if rng.gen::<f64>() < 0.95 {
                    m.push(
                        (br * block + lr) as u32,
                        (bc * block + lc) as u32,
                        rng.gen_range(-1.0..1.0),
                    );
                }
            }
        }
    }
    // Keep the diagonal live so SpTRSV-style uses stay well-posed.
    for i in 0..n {
        m.push(i as u32, i as u32, 4.0);
    }
    m.coalesce();
    m
}

/// Empty-row/column extremes: entries confined to a thin occupied stripe
/// of rows *and* columns, leaving most rows and columns completely empty.
/// This is the shape that produced all-empty banks (the
/// `PartitionStats::imbalance` 0/0 → NaN regression) and exercises
/// zero-column compression where nearly every column vanishes.
#[must_use]
pub fn empty_extremes(n: usize, seed_salt: u64) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(DEFAULT_SEED ^ seed_salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let stripe = (n / 8).max(1);
    let row0 = n / 2;
    let mut m = Coo::new(n, n);
    for i in row0..(row0 + stripe).min(n) {
        for _ in 0..4 {
            let c = (row0 + rng.gen_range(0..stripe)).min(n - 1) as u32;
            m.push(i as u32, c, rng.gen_range(-1.0..1.0));
        }
        m.push(i as u32, i as u32, 4.0);
    }
    m.coalesce();
    m
}

/// The named adversarial corpus at size `n`: every shape the layout ×
/// scheme oracle and the autotuner bench must survive.
#[must_use]
pub fn suite(n: usize, seed_salt: u64) -> Vec<(&'static str, Coo)> {
    vec![
        ("adv_hub_rows", power_law_hubs(n, n * 6, 3, seed_salt)),
        ("adv_arrow", arrow(n, n, seed_salt)),
        ("adv_dense_blocks", near_dense_blocks(n, 8, 4, seed_salt)),
        ("adv_empty_extremes", empty_extremes(n, seed_salt)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for (a, b) in [
            (power_law_hubs(64, 400, 2, 7), power_law_hubs(64, 400, 2, 7)),
            (arrow(64, 64, 7), arrow(64, 64, 7)),
            (
                near_dense_blocks(64, 8, 3, 7),
                near_dense_blocks(64, 8, 3, 7),
            ),
            (empty_extremes(64, 7), empty_extremes(64, 7)),
        ] {
            assert_eq!(a, b);
        }
        assert_ne!(arrow(64, 64, 7), arrow(64, 64, 8));
    }

    #[test]
    fn hub_rows_are_extremely_skewed() {
        let m = power_law_hubs(128, 1024, 2, 1);
        let counts = m.row_counts();
        let max = *counts.iter().max().unwrap();
        let avg = m.nnz() as f64 / 128.0;
        assert!(max as f64 > 8.0 * avg, "max={max} avg={avg:.1}");
    }

    #[test]
    fn arrow_has_dense_border_and_diagonal() {
        let m = arrow(60, 0, 2);
        for i in 1..60u32 {
            assert!(m.iter().any(|e| e.row == 0 && e.col == i));
            assert!(m.iter().any(|e| e.row == i && e.col == 0));
            assert!(m.iter().any(|e| e.row == i && e.col == i));
        }
    }

    #[test]
    fn near_dense_blocks_fill_their_tiles() {
        let m = near_dense_blocks(64, 8, 3, 3);
        let fill = crate::blocked::block_fill_ratio(&m, 8);
        assert!(fill > 0.3, "blocked shape should fill tiles: {fill:.2}");
    }

    #[test]
    fn empty_extremes_leave_most_rows_and_cols_empty() {
        let m = empty_extremes(80, 4);
        let empty_rows = m.row_counts().iter().filter(|&&c| c == 0).count();
        let empty_cols = m.col_counts().iter().filter(|&&c| c == 0).count();
        assert!(empty_rows > 40, "empty rows: {empty_rows}");
        assert!(empty_cols > 40, "empty cols: {empty_cols}");
        assert!(m.nnz() > 0);
    }

    #[test]
    fn suite_names_are_unique_and_matrices_nonempty() {
        let s = suite(64, 1);
        assert_eq!(s.len(), 4);
        let mut names: Vec<&str> = s.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
        for (name, m) in &s {
            assert!(m.nnz() > 0, "{name} is empty");
            assert_eq!(m.nrows(), 64);
        }
    }
}
