//! SpMV matrix distribution and compression across PIM banks (paper §V).
//!
//! The matrix is cut row-wise into strips whose height fits one DRAM row's
//! worth of output vector; within each strip, all-zero columns are removed
//! (*matrix compression*, Figure 6) before the strip is cut column-wise into
//! submatrices whose compacted width fits one DRAM row's worth of input
//! vector. Each submatrix is assigned to a bank; the host replicates the
//! needed input-vector slices over the external bus and accumulates partial
//! outputs, so compression directly reduces the external traffic that the
//! paper identifies as the SpMV bottleneck.

use crate::{Coo, Entry, Precision};
use serde::{Deserialize, Serialize};

/// How submatrices are placed onto banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistPolicy {
    /// Cyclic assignment in submatrix order (the paper's base policy: it
    /// favors low replication over evenness — see the `bcsstk32` discussion
    /// in §VII-B).
    RoundRobin,
    /// Greedy assignment to the currently least-loaded bank (an ablation).
    LeastLoaded,
}

/// Partitioning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of PIM banks (processing units); the paper's cube has 256.
    pub num_banks: usize,
    /// DRAM row size in bytes per bank (HBM2: 1024).
    pub row_bytes: usize,
    /// Element precision — smaller values pack larger submatrix dimensions
    /// into one row, cutting partition count and external traffic (§V).
    pub precision: Precision,
    /// Placement policy.
    pub policy: DistPolicy,
    /// Matrix compression (Figure 6): drop all-zero columns per row strip
    /// before the column cut. Disabling it reproduces the naive
    /// distribution the paper compares against (ablation).
    pub compress: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_banks: 256,
            row_bytes: 1024,
            precision: Precision::Fp64,
            policy: DistPolicy::RoundRobin,
            compress: true,
        }
    }
}

impl PartitionConfig {
    /// Maximum submatrix dimension: one DRAM row of vector elements.
    #[must_use]
    pub fn max_dim(&self) -> usize {
        (self.row_bytes / self.precision.bytes()).max(1)
    }
}

/// One submatrix mapped to one bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubMatrix {
    /// Bank (processing unit) index.
    pub bank: usize,
    /// Global row range covered (half-open).
    pub row_lo: usize,
    /// Global row range end.
    pub row_hi: usize,
    /// Global column ids kept after compression, in ascending order; the
    /// local column index of `entries` indexes into this list.
    pub cols: Vec<u32>,
    /// Entries with *local* (row - row_lo, position-in-cols) indices.
    pub entries: Vec<Entry>,
}

impl SubMatrix {
    /// Number of non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Input-vector elements this bank needs replicated.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.cols.len()
    }

    /// Output rows this bank produces partial sums for.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.row_hi - self.row_lo
    }
}

/// Aggregate statistics of a partition — the quantities §V reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Total submatrices produced.
    pub num_submatrices: usize,
    /// Banks with at least one submatrix.
    pub banks_used: usize,
    /// Total input-vector elements replicated across banks.
    pub input_replication: usize,
    /// Total partial-output elements accumulated by the host.
    pub output_accumulation: usize,
    /// Max non-zeros on any single bank (lockstep completion is bounded by
    /// the heaviest bank).
    pub max_bank_nnz: usize,
    /// Mean non-zeros per *used* bank.
    pub avg_bank_nnz: f64,
    /// External traffic in bytes: replicated inputs + accumulated outputs
    /// (+ 4-byte row tags on outputs).
    pub external_bytes: usize,
}

impl PartitionStats {
    /// Load imbalance: `max_bank_nnz / avg_bank_nnz` (1.0 = perfect).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.avg_bank_nnz == 0.0 {
            return 1.0;
        }
        self.max_bank_nnz as f64 / self.avg_bank_nnz
    }
}

/// The result of distributing a matrix across PIM banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankPartition {
    config: PartitionConfig,
    nrows: usize,
    ncols: usize,
    submatrices: Vec<SubMatrix>,
}

impl BankPartition {
    /// Partition `a` according to `config` (row-strip, compress, col-cut,
    /// place).
    #[must_use]
    pub fn build(a: &Coo, config: PartitionConfig) -> Self {
        let max_dim = config.max_dim();
        let mut subs: Vec<SubMatrix> = Vec::new();

        // Row-major order so strips are contiguous entry runs.
        let mut sorted = a.clone();
        sorted.sort_row_major();
        let entries = sorted.entries();

        let mut strip_start_idx = 0usize;
        let mut row_lo = 0usize;
        while row_lo < a.nrows() {
            let row_hi = (row_lo + max_dim).min(a.nrows());
            // Collect this strip's entries.
            let mut idx = strip_start_idx;
            while idx < entries.len() && (entries[idx].row as usize) < row_hi {
                idx += 1;
            }
            let strip = &entries[strip_start_idx..idx];
            strip_start_idx = idx;

            if !strip.is_empty() {
                // Matrix compression: keep only columns with a non-zero.
                // Without it, every strip spans the full column range
                // (the naive distribution of Figure 6's left side).
                let cols: Vec<u32> = if config.compress {
                    let mut c: Vec<u32> = strip.iter().map(|e| e.col).collect();
                    c.sort_unstable();
                    c.dedup();
                    c
                } else {
                    (0..a.ncols() as u32).collect()
                };
                // Cut the *compacted* column list into row-sized chunks.
                for chunk in cols.chunks(max_dim) {
                    let lo_col = chunk[0];
                    let hi_col = *chunk.last().expect("non-empty chunk");
                    let local: Vec<Entry> = strip
                        .iter()
                        .filter(|e| e.col >= lo_col && e.col <= hi_col)
                        .map(|e| {
                            let local_col = chunk
                                .binary_search(&e.col)
                                .expect("column present by construction");
                            Entry::new(e.row - row_lo as u32, local_col as u32, e.val)
                        })
                        .collect();
                    if !local.is_empty() {
                        subs.push(SubMatrix {
                            bank: 0, // placed below
                            row_lo,
                            row_hi,
                            cols: chunk.to_vec(),
                            entries: local,
                        });
                    }
                }
            }
            row_lo = row_hi;
        }

        // Placement.
        match config.policy {
            DistPolicy::RoundRobin => {
                for (i, s) in subs.iter_mut().enumerate() {
                    s.bank = i % config.num_banks;
                }
            }
            DistPolicy::LeastLoaded => {
                let mut load = vec![0usize; config.num_banks];
                // Place heaviest first for a better greedy bound.
                let mut order: Vec<usize> = (0..subs.len()).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(subs[i].nnz()));
                for i in order {
                    let bank = (0..config.num_banks)
                        .min_by_key(|&b| load[b])
                        .expect("num_banks > 0");
                    subs[i].bank = bank;
                    load[bank] += subs[i].nnz();
                }
            }
        }

        BankPartition {
            config,
            nrows: a.nrows(),
            ncols: a.ncols(),
            submatrices: subs,
        }
    }

    /// The configuration used.
    #[must_use]
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// All submatrices.
    #[must_use]
    pub fn submatrices(&self) -> &[SubMatrix] {
        &self.submatrices
    }

    /// Submatrices on one bank.
    pub fn bank(&self, b: usize) -> impl Iterator<Item = &SubMatrix> {
        self.submatrices.iter().filter(move |s| s.bank == b)
    }

    /// Non-zeros per bank.
    #[must_use]
    pub fn bank_nnz(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.config.num_banks];
        for s in &self.submatrices {
            load[s.bank] += s.nnz();
        }
        load
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> PartitionStats {
        let loads = self.bank_nnz();
        let banks_used = loads.iter().filter(|&&l| l > 0).count();
        let max_bank_nnz = loads.iter().copied().max().unwrap_or(0);
        let total_nnz: usize = loads.iter().sum();
        let input_replication: usize = self.submatrices.iter().map(SubMatrix::input_len).sum();
        // Host reads back only rows that actually received partial sums —
        // "the host chip accumulates only non-zero outputs" (§V).
        let output_accumulation: usize = self
            .submatrices
            .iter()
            .map(|s| {
                let mut rows: Vec<u32> = s.entries.iter().map(|e| e.row).collect();
                rows.sort_unstable();
                rows.dedup();
                rows.len()
            })
            .sum();
        let vbytes = self.config.precision.bytes();
        let external_bytes = input_replication * vbytes + output_accumulation * (vbytes + 4);
        PartitionStats {
            num_submatrices: self.submatrices.len(),
            banks_used,
            input_replication,
            output_accumulation,
            max_bank_nnz,
            avg_bank_nnz: if banks_used == 0 {
                0.0
            } else {
                total_nnz as f64 / banks_used as f64
            },
            external_bytes,
        }
    }

    /// Matrix shape this partition covers.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Total non-zeros across all submatrices (must equal the source nnz —
    /// conservation invariant).
    #[must_use]
    pub fn total_nnz(&self) -> usize {
        self.submatrices.iter().map(SubMatrix::nnz).sum()
    }

    /// Reference distributed SpMV: every bank computes its submatrix with a
    /// gathered input slice; the host accumulates partial outputs. Must
    /// equal [`Coo::spmv`] — this is the correctness model the PIM engine is
    /// checked against.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "partitioned spmv length mismatch");
        let mut y = vec![0.0; self.nrows];
        for s in &self.submatrices {
            // Host replicates exactly the compacted columns.
            let gathered: Vec<f64> = s.cols.iter().map(|&c| x[c as usize]).collect();
            for e in &s.entries {
                y[s.row_lo + e.row as usize] += e.val * gathered[e.col as usize];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn cfg(num_banks: usize, row_bytes: usize, precision: Precision) -> PartitionConfig {
        PartitionConfig {
            num_banks,
            row_bytes,
            precision,
            policy: DistPolicy::RoundRobin,
            compress: true,
        }
    }

    #[test]
    fn max_dim_depends_on_precision() {
        assert_eq!(cfg(4, 1024, Precision::Fp64).max_dim(), 128);
        assert_eq!(cfg(4, 1024, Precision::Int8).max_dim(), 1024);
    }

    #[test]
    fn nnz_is_conserved() {
        let a = gen::rmat(300, 5, 1);
        let p = BankPartition::build(&a, cfg(8, 256, Precision::Fp64));
        assert_eq!(p.total_nnz(), a.nnz());
    }

    #[test]
    fn partitioned_spmv_matches_reference() {
        let a = gen::rmat(200, 6, 2);
        let x = gen::dense_vector(200, 3);
        let want = a.spmv(&x);
        for rb in [128usize, 256, 1024] {
            let p = BankPartition::build(&a, cfg(16, rb, Precision::Fp64));
            let got = p.spmv(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "row_bytes={rb}");
            }
        }
    }

    #[test]
    fn compression_removes_zero_columns() {
        // A matrix with one dense column: every strip keeps just that column.
        let mut a = Coo::new(64, 64);
        for r in 0..64 {
            a.push(r, 7, 1.0);
        }
        let p = BankPartition::build(&a, cfg(4, 64, Precision::Fp64)); // max_dim 8
        let stats = p.stats();
        // 8 row strips, each compressed to exactly 1 input column.
        assert_eq!(stats.num_submatrices, 8);
        assert_eq!(stats.input_replication, 8);
        // Without compression this would replicate 8 * 64 columns.
    }

    #[test]
    fn submatrix_dims_respect_row_capacity() {
        let a = gen::rmat(500, 4, 4);
        let config = cfg(8, 128, Precision::Fp64); // max_dim 16
        let p = BankPartition::build(&a, config);
        for s in p.submatrices() {
            assert!(s.output_len() <= 16);
            assert!(s.input_len() <= 16);
        }
    }

    #[test]
    fn least_loaded_beats_round_robin_imbalance() {
        let a = gen::web_hubs(512, 6000, 1); // heavily skewed
        let rr = BankPartition::build(&a, cfg(16, 128, Precision::Fp64));
        let mut ll_cfg = cfg(16, 128, Precision::Fp64);
        ll_cfg.policy = DistPolicy::LeastLoaded;
        let ll = BankPartition::build(&a, ll_cfg);
        assert!(
            ll.stats().imbalance() <= rr.stats().imbalance() + 1e-9,
            "LL {} vs RR {}",
            ll.stats().imbalance(),
            rr.stats().imbalance()
        );
    }

    #[test]
    fn smaller_precision_reduces_external_traffic() {
        let a = gen::rmat(1000, 6, 5);
        let f64p = BankPartition::build(&a, cfg(32, 1024, Precision::Fp64));
        let i8p = BankPartition::build(&a, cfg(32, 1024, Precision::Int8));
        assert!(
            i8p.stats().external_bytes < f64p.stats().external_bytes,
            "INT8 {} vs FP64 {}",
            i8p.stats().external_bytes,
            f64p.stats().external_bytes
        );
        // Larger submatrices => fewer partitions.
        assert!(i8p.stats().num_submatrices <= f64p.stats().num_submatrices);
    }

    #[test]
    fn empty_matrix_partitions_cleanly() {
        let a = Coo::new(100, 100);
        let p = BankPartition::build(&a, PartitionConfig::default());
        assert_eq!(p.total_nnz(), 0);
        assert_eq!(p.stats().banks_used, 0);
        assert_eq!(p.spmv(&vec![0.0; 100]), vec![0.0; 100]);
    }

    #[test]
    fn disabling_compression_inflates_replication() {
        let a = gen::rmat(600, 5, 8);
        let mut on = cfg(16, 256, Precision::Fp64);
        on.compress = true;
        let mut off = on;
        off.compress = false;
        let pon = BankPartition::build(&a, on);
        let poff = BankPartition::build(&a, off);
        // Same math, very different external traffic.
        let x = gen::dense_vector(600, 1);
        let yon = pon.spmv(&x);
        let yoff = poff.spmv(&x);
        for (a_, b_) in yon.iter().zip(&yoff) {
            assert!((a_ - b_).abs() < 1e-9);
        }
        assert!(
            poff.stats().input_replication > 2 * pon.stats().input_replication,
            "naive {} vs compressed {}",
            poff.stats().input_replication,
            pon.stats().input_replication
        );
    }

    #[test]
    fn stats_imbalance_on_empty_is_one() {
        assert_eq!(PartitionStats::default().imbalance(), 1.0);
    }
}
