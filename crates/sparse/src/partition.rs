//! SpMV matrix distribution and compression across PIM banks (paper §V).
//!
//! The matrix is cut row-wise into strips whose height fits one DRAM row's
//! worth of output vector; within each strip, all-zero columns are removed
//! (*matrix compression*, Figure 6) before the strip is cut column-wise into
//! submatrices whose compacted width fits one DRAM row's worth of input
//! vector. Each submatrix is assigned to a bank; the host replicates the
//! needed input-vector slices over the external bus and accumulates partial
//! outputs, so compression directly reduces the external traffic that the
//! paper identifies as the SpMV bottleneck.
//!
//! Beyond the paper's fixed 1D row split, a [`PartitionScheme`] can first
//! cut the column range into blocks (SparseP's 2D variants): equally-wide
//! blocks ([`PartitionScheme::Grid2D`]) bound each bank's input-slice span,
//! while nnz-balanced variable-width blocks
//! ([`PartitionScheme::Balanced2D`]) even out column skew (hub columns)
//! before the per-strip compression and column cut run unchanged inside
//! each block.

use crate::{Coo, Entry, Precision};
use serde::{Deserialize, Serialize};

/// How submatrices are placed onto banks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistPolicy {
    /// Cyclic assignment in submatrix order (the paper's base policy: it
    /// favors low replication over evenness — see the `bcsstk32` discussion
    /// in §VII-B).
    #[default]
    RoundRobin,
    /// Greedy assignment to the currently least-loaded bank (an ablation).
    LeastLoaded,
}

/// How the matrix is cut into submatrices before placement.
///
/// All schemes share the row-strip outer cut (a strip's output must fit
/// one DRAM row) and the per-cell compression + column cut; they differ in
/// whether and how the *column* range is pre-blocked. Every scheme
/// therefore emits plain [`SubMatrix`] values and runs through the same
/// wave machinery and stream programs — the layout changes the cut, never
/// the kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// The paper's 1D scheme: row strips, compressed columns chunked by
    /// row capacity. Column blocks = the whole column range.
    #[default]
    Row1D,
    /// 2D grid with `col_blocks` equally-wide column blocks (SparseP's
    /// equally-wide variant): bounds each cell's input-vector span, so
    /// banks gather from a localized slice of `x`.
    Grid2D {
        /// Number of equal-width column blocks (clamped to ≥ 1).
        col_blocks: usize,
    },
    /// 2D grid with `col_blocks` variable-width column blocks balancing
    /// non-zeros per block (SparseP's variable-sized variant): hub-heavy
    /// columns get narrow blocks, sparse ranges get wide ones.
    Balanced2D {
        /// Number of nnz-balanced column blocks (clamped to ≥ 1).
        col_blocks: usize,
    },
}

impl PartitionScheme {
    /// Number of column blocks this scheme cuts (the 2D "shard count").
    #[must_use]
    pub fn col_blocks(&self) -> usize {
        match *self {
            PartitionScheme::Row1D => 1,
            PartitionScheme::Grid2D { col_blocks } | PartitionScheme::Balanced2D { col_blocks } => {
                col_blocks.max(1)
            }
        }
    }

    /// Short label for reports (`1d`, `grid2d(k)`, `bal2d(k)`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            PartitionScheme::Row1D => "1d".to_string(),
            PartitionScheme::Grid2D { col_blocks } => format!("grid2d({col_blocks})"),
            PartitionScheme::Balanced2D { col_blocks } => format!("bal2d({col_blocks})"),
        }
    }

    /// The half-open global column ranges this scheme cuts `a` into, in
    /// ascending order, covering `0..ncols` exactly. `Row1D` is the single
    /// full range; `Grid2D` cuts equal widths; `Balanced2D` places the
    /// boundaries so each block carries ≈ `nnz / col_blocks` non-zeros.
    #[must_use]
    pub fn column_bounds(&self, a: &Coo) -> Vec<(u32, u32)> {
        let ncols = a.ncols();
        if ncols == 0 {
            return vec![(0, 0)];
        }
        let k = self.col_blocks().min(ncols).max(1);
        match *self {
            PartitionScheme::Row1D => vec![(0, ncols as u32)],
            PartitionScheme::Grid2D { .. } => {
                let width = ncols.div_ceil(k);
                (0..k)
                    .map(|b| ((b * width) as u32, ((b + 1) * width).min(ncols) as u32))
                    .filter(|(lo, hi)| lo < hi)
                    .collect()
            }
            PartitionScheme::Balanced2D { .. } => {
                let counts = a.col_counts();
                let total: usize = counts.iter().sum();
                if total == 0 {
                    return vec![(0, ncols as u32)];
                }
                // Greedy prefix cut: close a block once it holds its fair
                // share of the remaining nnz, leaving one column per
                // remaining block so every block is non-empty in columns.
                let mut bounds = Vec::with_capacity(k);
                let mut lo = 0usize;
                let mut carried = 0usize;
                let mut remaining = total;
                for b in 0..k {
                    let blocks_left = k - b;
                    let target = remaining.div_ceil(blocks_left);
                    let mut hi = lo;
                    let mut acc = 0usize;
                    while hi < ncols {
                        // Keep at least one column per remaining block.
                        if ncols - (hi + 1) < blocks_left - 1 {
                            break;
                        }
                        acc += counts[hi];
                        hi += 1;
                        if acc >= target && b + 1 < k {
                            break;
                        }
                    }
                    if b + 1 == k {
                        hi = ncols;
                    }
                    bounds.push((lo as u32, hi as u32));
                    carried += acc;
                    remaining = total - carried;
                    lo = hi;
                }
                bounds.retain(|(l, h)| l < h);
                bounds
            }
        }
    }
}

/// Partitioning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of PIM banks (processing units); the paper's cube has 256.
    pub num_banks: usize,
    /// DRAM row size in bytes per bank (HBM2: 1024).
    pub row_bytes: usize,
    /// Element precision — smaller values pack larger submatrix dimensions
    /// into one row, cutting partition count and external traffic (§V).
    pub precision: Precision,
    /// Placement policy.
    pub policy: DistPolicy,
    /// Matrix compression (Figure 6): drop all-zero columns per row strip
    /// before the column cut. Disabling it reproduces the naive
    /// distribution the paper compares against (ablation).
    pub compress: bool,
    /// Partitioning scheme (1D row split or a 2D column-blocked variant).
    pub scheme: PartitionScheme,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_banks: 256,
            row_bytes: 1024,
            precision: Precision::Fp64,
            policy: DistPolicy::RoundRobin,
            compress: true,
            scheme: PartitionScheme::Row1D,
        }
    }
}

impl PartitionConfig {
    /// Maximum submatrix dimension: one DRAM row of vector elements.
    #[must_use]
    pub fn max_dim(&self) -> usize {
        (self.row_bytes / self.precision.bytes()).max(1)
    }
}

/// One submatrix mapped to one bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubMatrix {
    /// Bank (processing unit) index.
    pub bank: usize,
    /// Global row range covered (half-open).
    pub row_lo: usize,
    /// Global row range end.
    pub row_hi: usize,
    /// Global column ids kept after compression, in ascending order; the
    /// local column index of `entries` indexes into this list.
    pub cols: Vec<u32>,
    /// Entries with *local* (row - row_lo, position-in-cols) indices.
    pub entries: Vec<Entry>,
}

impl SubMatrix {
    /// Number of non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Input-vector elements this bank needs replicated.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.cols.len()
    }

    /// Output rows this bank produces partial sums for.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.row_hi - self.row_lo
    }
}

/// Aggregate statistics of a partition — the quantities §V reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Total submatrices produced.
    pub num_submatrices: usize,
    /// Banks with at least one submatrix.
    pub banks_used: usize,
    /// Total input-vector elements replicated across banks.
    pub input_replication: usize,
    /// Total partial-output elements accumulated by the host.
    pub output_accumulation: usize,
    /// Max non-zeros on any single bank (lockstep completion is bounded by
    /// the heaviest bank).
    pub max_bank_nnz: usize,
    /// Mean non-zeros per *used* bank.
    pub avg_bank_nnz: f64,
    /// External traffic in bytes: replicated inputs + accumulated outputs
    /// (+ 4-byte row tags on outputs).
    pub external_bytes: usize,
}

impl PartitionStats {
    /// Load imbalance: `max_bank_nnz / avg_bank_nnz` (1.0 = perfect).
    ///
    /// An empty partition (no used banks — e.g. every submatrix landed
    /// empty after a 2D cut) has no meaningful ratio; it reports 1.0
    /// instead of dividing by zero. The negated comparison also catches a
    /// NaN average, so a corrupted stats value can never propagate NaN
    /// into placement decisions.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.avg_bank_nnz.is_nan() || self.avg_bank_nnz <= 0.0 {
            return 1.0;
        }
        self.max_bank_nnz as f64 / self.avg_bank_nnz
    }
}

/// The result of distributing a matrix across PIM banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankPartition {
    config: PartitionConfig,
    nrows: usize,
    ncols: usize,
    submatrices: Vec<SubMatrix>,
}

impl BankPartition {
    /// Partition `a` according to `config` (row-strip, column-block by the
    /// scheme, compress, col-cut, place). With [`PartitionScheme::Row1D`]
    /// the single full-width column block reproduces the paper's 1D cut
    /// exactly.
    #[must_use]
    pub fn build(a: &Coo, config: PartitionConfig) -> Self {
        let max_dim = config.max_dim();
        let col_bounds = config.scheme.column_bounds(a);
        let mut subs: Vec<SubMatrix> = Vec::new();

        // Row-major order so strips are contiguous entry runs.
        let mut sorted = a.clone();
        sorted.sort_row_major();
        let entries = sorted.entries();

        let mut strip_start_idx = 0usize;
        let mut row_lo = 0usize;
        while row_lo < a.nrows() {
            let row_hi = (row_lo + max_dim).min(a.nrows());
            // Collect this strip's entries.
            let mut idx = strip_start_idx;
            while idx < entries.len() && (entries[idx].row as usize) < row_hi {
                idx += 1;
            }
            let strip = &entries[strip_start_idx..idx];
            strip_start_idx = idx;

            for &(block_lo, block_hi) in &col_bounds {
                if strip.is_empty() {
                    continue;
                }
                // Matrix compression: keep only columns with a non-zero in
                // this (strip × column block) cell. Without it, every cell
                // spans its block's full column range (the naive
                // distribution of Figure 6's left side).
                let cols: Vec<u32> = if config.compress {
                    let mut c: Vec<u32> = strip
                        .iter()
                        .map(|e| e.col)
                        .filter(|&c| c >= block_lo && c < block_hi)
                        .collect();
                    c.sort_unstable();
                    c.dedup();
                    c
                } else {
                    (block_lo..block_hi).collect()
                };
                // Cut the *compacted* column list into row-sized chunks.
                for chunk in cols.chunks(max_dim) {
                    let lo_col = chunk[0];
                    let hi_col = *chunk.last().expect("non-empty chunk");
                    let local: Vec<Entry> = strip
                        .iter()
                        .filter(|e| e.col >= lo_col && e.col <= hi_col)
                        .map(|e| {
                            let local_col = chunk
                                .binary_search(&e.col)
                                .expect("column present by construction");
                            Entry::new(e.row - row_lo as u32, local_col as u32, e.val)
                        })
                        .collect();
                    if !local.is_empty() {
                        subs.push(SubMatrix {
                            bank: 0, // placed below
                            row_lo,
                            row_hi,
                            cols: chunk.to_vec(),
                            entries: local,
                        });
                    }
                }
            }
            row_lo = row_hi;
        }

        // Placement.
        match config.policy {
            DistPolicy::RoundRobin => {
                for (i, s) in subs.iter_mut().enumerate() {
                    s.bank = i % config.num_banks;
                }
            }
            DistPolicy::LeastLoaded => {
                let mut load = vec![0usize; config.num_banks];
                // Place heaviest first for a better greedy bound.
                let mut order: Vec<usize> = (0..subs.len()).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(subs[i].nnz()));
                for i in order {
                    let bank = (0..config.num_banks)
                        .min_by_key(|&b| load[b])
                        .expect("num_banks > 0");
                    subs[i].bank = bank;
                    load[bank] += subs[i].nnz();
                }
            }
        }

        BankPartition {
            config,
            nrows: a.nrows(),
            ncols: a.ncols(),
            submatrices: subs,
        }
    }

    /// The configuration used.
    #[must_use]
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// All submatrices.
    #[must_use]
    pub fn submatrices(&self) -> &[SubMatrix] {
        &self.submatrices
    }

    /// Submatrices on one bank.
    pub fn bank(&self, b: usize) -> impl Iterator<Item = &SubMatrix> {
        self.submatrices.iter().filter(move |s| s.bank == b)
    }

    /// Non-zeros per bank.
    #[must_use]
    pub fn bank_nnz(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.config.num_banks];
        for s in &self.submatrices {
            load[s.bank] += s.nnz();
        }
        load
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> PartitionStats {
        let loads = self.bank_nnz();
        let banks_used = loads.iter().filter(|&&l| l > 0).count();
        let max_bank_nnz = loads.iter().copied().max().unwrap_or(0);
        let total_nnz: usize = loads.iter().sum();
        let input_replication: usize = self.submatrices.iter().map(SubMatrix::input_len).sum();
        // Host reads back only rows that actually received partial sums —
        // "the host chip accumulates only non-zero outputs" (§V).
        let output_accumulation: usize = self
            .submatrices
            .iter()
            .map(|s| {
                let mut rows: Vec<u32> = s.entries.iter().map(|e| e.row).collect();
                rows.sort_unstable();
                rows.dedup();
                rows.len()
            })
            .sum();
        let vbytes = self.config.precision.bytes();
        let external_bytes = input_replication * vbytes + output_accumulation * (vbytes + 4);
        PartitionStats {
            num_submatrices: self.submatrices.len(),
            banks_used,
            input_replication,
            output_accumulation,
            max_bank_nnz,
            avg_bank_nnz: if banks_used == 0 {
                0.0
            } else {
                total_nnz as f64 / banks_used as f64
            },
            external_bytes,
        }
    }

    /// Matrix shape this partition covers.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Total non-zeros across all submatrices (must equal the source nnz —
    /// conservation invariant).
    #[must_use]
    pub fn total_nnz(&self) -> usize {
        self.submatrices.iter().map(SubMatrix::nnz).sum()
    }

    /// Reference distributed SpMV: every bank computes its submatrix with a
    /// gathered input slice; the host accumulates partial outputs. Must
    /// equal [`Coo::spmv`] — this is the correctness model the PIM engine is
    /// checked against.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "partitioned spmv length mismatch");
        let mut y = vec![0.0; self.nrows];
        for s in &self.submatrices {
            // Host replicates exactly the compacted columns.
            let gathered: Vec<f64> = s.cols.iter().map(|&c| x[c as usize]).collect();
            for e in &s.entries {
                y[s.row_lo + e.row as usize] += e.val * gathered[e.col as usize];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn cfg(num_banks: usize, row_bytes: usize, precision: Precision) -> PartitionConfig {
        PartitionConfig {
            num_banks,
            row_bytes,
            precision,
            policy: DistPolicy::RoundRobin,
            compress: true,
            scheme: PartitionScheme::Row1D,
        }
    }

    #[test]
    fn max_dim_depends_on_precision() {
        assert_eq!(cfg(4, 1024, Precision::Fp64).max_dim(), 128);
        assert_eq!(cfg(4, 1024, Precision::Int8).max_dim(), 1024);
    }

    #[test]
    fn nnz_is_conserved() {
        let a = gen::rmat(300, 5, 1);
        let p = BankPartition::build(&a, cfg(8, 256, Precision::Fp64));
        assert_eq!(p.total_nnz(), a.nnz());
    }

    #[test]
    fn partitioned_spmv_matches_reference() {
        let a = gen::rmat(200, 6, 2);
        let x = gen::dense_vector(200, 3);
        let want = a.spmv(&x);
        for rb in [128usize, 256, 1024] {
            let p = BankPartition::build(&a, cfg(16, rb, Precision::Fp64));
            let got = p.spmv(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "row_bytes={rb}");
            }
        }
    }

    #[test]
    fn compression_removes_zero_columns() {
        // A matrix with one dense column: every strip keeps just that column.
        let mut a = Coo::new(64, 64);
        for r in 0..64 {
            a.push(r, 7, 1.0);
        }
        let p = BankPartition::build(&a, cfg(4, 64, Precision::Fp64)); // max_dim 8
        let stats = p.stats();
        // 8 row strips, each compressed to exactly 1 input column.
        assert_eq!(stats.num_submatrices, 8);
        assert_eq!(stats.input_replication, 8);
        // Without compression this would replicate 8 * 64 columns.
    }

    #[test]
    fn submatrix_dims_respect_row_capacity() {
        let a = gen::rmat(500, 4, 4);
        let config = cfg(8, 128, Precision::Fp64); // max_dim 16
        let p = BankPartition::build(&a, config);
        for s in p.submatrices() {
            assert!(s.output_len() <= 16);
            assert!(s.input_len() <= 16);
        }
    }

    #[test]
    fn least_loaded_beats_round_robin_imbalance() {
        let a = gen::web_hubs(512, 6000, 1); // heavily skewed
        let rr = BankPartition::build(&a, cfg(16, 128, Precision::Fp64));
        let mut ll_cfg = cfg(16, 128, Precision::Fp64);
        ll_cfg.policy = DistPolicy::LeastLoaded;
        let ll = BankPartition::build(&a, ll_cfg);
        assert!(
            ll.stats().imbalance() <= rr.stats().imbalance() + 1e-9,
            "LL {} vs RR {}",
            ll.stats().imbalance(),
            rr.stats().imbalance()
        );
    }

    #[test]
    fn smaller_precision_reduces_external_traffic() {
        let a = gen::rmat(1000, 6, 5);
        let f64p = BankPartition::build(&a, cfg(32, 1024, Precision::Fp64));
        let i8p = BankPartition::build(&a, cfg(32, 1024, Precision::Int8));
        assert!(
            i8p.stats().external_bytes < f64p.stats().external_bytes,
            "INT8 {} vs FP64 {}",
            i8p.stats().external_bytes,
            f64p.stats().external_bytes
        );
        // Larger submatrices => fewer partitions.
        assert!(i8p.stats().num_submatrices <= f64p.stats().num_submatrices);
    }

    #[test]
    fn empty_matrix_partitions_cleanly() {
        let a = Coo::new(100, 100);
        let p = BankPartition::build(&a, PartitionConfig::default());
        assert_eq!(p.total_nnz(), 0);
        assert_eq!(p.stats().banks_used, 0);
        assert_eq!(p.spmv(&vec![0.0; 100]), vec![0.0; 100]);
    }

    #[test]
    fn disabling_compression_inflates_replication() {
        let a = gen::rmat(600, 5, 8);
        let mut on = cfg(16, 256, Precision::Fp64);
        on.compress = true;
        let mut off = on;
        off.compress = false;
        let pon = BankPartition::build(&a, on);
        let poff = BankPartition::build(&a, off);
        // Same math, very different external traffic.
        let x = gen::dense_vector(600, 1);
        let yon = pon.spmv(&x);
        let yoff = poff.spmv(&x);
        for (a_, b_) in yon.iter().zip(&yoff) {
            assert!((a_ - b_).abs() < 1e-9);
        }
        assert!(
            poff.stats().input_replication > 2 * pon.stats().input_replication,
            "naive {} vs compressed {}",
            poff.stats().input_replication,
            pon.stats().input_replication
        );
    }

    #[test]
    fn stats_imbalance_on_empty_is_one() {
        assert_eq!(PartitionStats::default().imbalance(), 1.0);
    }

    #[test]
    fn stats_imbalance_guards_nan_and_zero_averages() {
        // Regression: an empty-bank partition reports avg_bank_nnz 0.0 —
        // and a corrupted average (NaN from a 0/0 elsewhere) must not
        // propagate. Both degenerate cases pin imbalance at 1.0.
        let mut s = PartitionStats {
            max_bank_nnz: 7,
            avg_bank_nnz: 0.0,
            ..PartitionStats::default()
        };
        assert_eq!(s.imbalance(), 1.0);
        s.avg_bank_nnz = f64::NAN;
        assert_eq!(s.imbalance(), 1.0);
        s.avg_bank_nnz = -1.0;
        assert_eq!(s.imbalance(), 1.0);
        s.avg_bank_nnz = 3.5;
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn row1d_default_scheme_is_unchanged() {
        // The scheme extension must not perturb the paper's 1D cut: a
        // Row1D build is bit-identical to the pre-scheme behaviour
        // (single full-width column block).
        let a = gen::rmat(300, 5, 1);
        let p = BankPartition::build(&a, cfg(8, 256, Precision::Fp64));
        assert_eq!(
            PartitionScheme::Row1D.column_bounds(&a),
            vec![(0, a.ncols() as u32)]
        );
        assert_eq!(p.total_nnz(), a.nnz());
    }

    #[test]
    fn column_bounds_cover_and_partition_the_range() {
        let a = gen::web_hubs(257, 2000, 3); // non-power-of-two, skewed
        for scheme in [
            PartitionScheme::Grid2D { col_blocks: 4 },
            PartitionScheme::Grid2D { col_blocks: 7 },
            PartitionScheme::Balanced2D { col_blocks: 4 },
            PartitionScheme::Balanced2D { col_blocks: 7 },
        ] {
            let bounds = scheme.column_bounds(&a);
            assert_eq!(bounds.len(), scheme.col_blocks(), "{}", scheme.label());
            assert_eq!(bounds[0].0, 0);
            assert_eq!(bounds.last().unwrap().1 as usize, a.ncols());
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "blocks must tile: {}", scheme.label());
                assert!(w[0].0 < w[0].1);
            }
        }
    }

    #[test]
    fn balanced2d_evens_column_skew() {
        // Hub columns concentrate nnz at low indices; equal-width blocks
        // leave the first block carrying most of the matrix while the
        // nnz-balanced cut keeps every block near the fair share.
        let a = gen::web_hubs(512, 6000, 1);
        let spread = |scheme: PartitionScheme| {
            let bounds = scheme.column_bounds(&a);
            let counts = a.col_counts();
            let loads: Vec<usize> = bounds
                .iter()
                .map(|&(lo, hi)| (lo as usize..hi as usize).map(|c| counts[c]).sum())
                .collect();
            *loads.iter().max().unwrap() as f64 / *loads.iter().min().unwrap().max(&1) as f64
        };
        let grid = spread(PartitionScheme::Grid2D { col_blocks: 4 });
        let bal = spread(PartitionScheme::Balanced2D { col_blocks: 4 });
        assert!(bal < grid, "balanced {bal:.2} must beat grid {grid:.2}");
        assert!(bal < 2.0, "balanced spread {bal:.2}");
    }

    #[test]
    fn two_d_schemes_conserve_nnz_and_match_reference() {
        let a = gen::rmat(300, 5, 9);
        let x = gen::dense_vector(300, 4);
        let want = a.spmv(&x);
        for scheme in [
            PartitionScheme::Grid2D { col_blocks: 3 },
            PartitionScheme::Balanced2D { col_blocks: 5 },
        ] {
            let mut c = cfg(8, 256, Precision::Fp64);
            c.scheme = scheme;
            let p = BankPartition::build(&a, c);
            assert_eq!(p.total_nnz(), a.nnz(), "{}", scheme.label());
            let got = p.spmv(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "{}", scheme.label());
            }
            let max_dim = c.max_dim();
            for s in p.submatrices() {
                assert!(s.output_len() <= max_dim);
                assert!(s.input_len() <= max_dim);
            }
        }
    }

    #[test]
    fn two_d_without_compression_spans_block_ranges_only() {
        // Naive (uncompressed) 2D cells span their column block, not the
        // whole matrix — the 2D cut itself is a coarse compression.
        let a = gen::rmat(128, 4, 2);
        let mut c = cfg(8, 1024, Precision::Fp64);
        c.compress = false;
        c.scheme = PartitionScheme::Grid2D { col_blocks: 4 };
        let p = BankPartition::build(&a, c);
        let width = a.ncols().div_ceil(4);
        for s in p.submatrices() {
            assert!(s.cols.len() <= width);
        }
        let x = gen::dense_vector(128, 7);
        let want = a.spmv(&x);
        for (g, w) in p.spmv(&x).iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }
}
