//! Sparse matrix substrate for the pSyncPIM reproduction.
//!
//! This crate provides everything the PIM simulator and kernel library need
//! to represent, generate and transform sparse matrices:
//!
//! * storage formats: [`Coo`], [`Csr`], [`Csc`] with lossless conversions,
//! * value [`Precision`]s from INT8 to FP64 (the PIM VALU is multi-precision),
//! * triangular-matrix utilities: extraction, [`level::LevelSchedule`]s,
//!   incomplete LDU factorization ([`ildu`]) and the recursive block
//!   decomposition the paper's SpTRSV kernel relies on ([`blockdecomp`]),
//! * the SpMV bank distribution / matrix-compression policy ([`partition`]),
//! * deterministic synthetic generators ([`gen`]) and a suite mirroring the
//!   paper's Table IX ([`suite`]),
//! * MatrixMarket I/O ([`mmio`]) so real SuiteSparse matrices can be used.
//!
//! # Example
//!
//! ```
//! use psim_sparse::{gen, Csr};
//!
//! let coo = gen::rmat(1 << 8, 4, 7);           // 256-node R-MAT graph
//! let csr = Csr::from(&coo);
//! let x = vec![1.0; csr.ncols()];
//! let y = csr.spmv(&x);
//! assert_eq!(y.len(), csr.nrows());
//! ```

pub mod adversarial;
pub mod bitmap;
pub mod blockdecomp;
pub mod blocked;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod gen;
pub mod ildu;
pub mod layout;
pub mod level;
pub mod mmio;
pub mod partition;
pub mod precision;
pub mod stats;
pub mod suite;
pub mod triangular;

pub use bitmap::BitmapMatrix;
pub use blockdecomp::{BlockPlan, BlockStep};
pub use blocked::{Bcoo, Bcsr};
pub use coo::{Coo, Entry};
pub use csc::Csc;
pub use csr::Csr;
pub use dense::SparseVec;
pub use error::SparseError;
pub use layout::{Layout, MatrixFormat};
pub use level::LevelSchedule;
pub use partition::{BankPartition, DistPolicy, PartitionConfig, PartitionScheme, PartitionStats};
pub use precision::Precision;
pub use stats::MatrixStats;
pub use triangular::Triangle;
