//! Compressed sparse column (CSC) format.
//!
//! The SpTRSV column-sweep kernel (paper Algorithm 3) walks the matrix
//! column-by-column; host-side planning for it uses CSC.

use crate::{Coo, Csr, SparseError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sparse matrix in compressed sparse column form.
///
/// Row indices within each column are sorted ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csc {
    /// Build from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Parse`] on inconsistent lengths or
    /// [`SparseError::IndexOutOfBounds`] on a bad row index.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if col_ptr.len() != ncols + 1
            || row_idx.len() != values.len()
            || col_ptr.last().copied().unwrap_or(0) != row_idx.len()
        {
            return Err(SparseError::Parse(
                "inconsistent CSC array lengths".to_string(),
            ));
        }
        if let Some(&r) = row_idx.iter().find(|&&r| r as usize >= nrows) {
            return Err(SparseError::IndexOutOfBounds {
                row: r as usize,
                col: 0,
                nrows,
                ncols,
            });
        }
        Ok(Csc {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    #[must_use]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Iterate over `(row, value)` pairs of one column.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols`.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&r, &v)| (r as usize, v))
    }

    /// Number of non-zeros in column `c`.
    #[must_use]
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Reference SpMV `y = A x` via column sweeps (scalar-multiplication
    /// order — the same dataflow as the PIM SpTRSV kernel).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "spmv operand length mismatch");
        let mut y = vec![0.0; self.nrows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for (r, v) in self.col(c) {
                y[r] += v * xc;
            }
        }
        y
    }
}

impl fmt::Display for Csc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Csc {}x{} nnz={}", self.nrows, self.ncols, self.nnz())
    }
}

impl From<&Coo> for Csc {
    fn from(coo: &Coo) -> Self {
        let t = Csr::from(&coo.transpose());
        Csc {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            values: t.values().to_vec(),
        }
    }
}

impl From<&Csr> for Csc {
    fn from(csr: &Csr) -> Self {
        let t = csr.transpose();
        Csc {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            values: t.values().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        coo
    }

    #[test]
    fn column_access() {
        let m = Csc::from(&sample_coo());
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 4.0)]);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(2), 1);
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = sample_coo();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(Csc::from(&coo).spmv(&x), coo.spmv(&x));
    }

    #[test]
    fn csr_csc_roundtrip_through_coo() {
        let coo = sample_coo();
        let csr = Csr::from(&coo);
        let csc = Csc::from(&csr);
        let mut back = Coo::from(&csc);
        back.sort_row_major();
        let mut orig = coo.clone();
        orig.sort_row_major();
        assert_eq!(back, orig);
    }

    #[test]
    fn from_raw_validates() {
        assert!(Csc::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(Csc::from_raw(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csc::from_raw(2, 2, vec![0, 1, 2], vec![0, 7], vec![1.0, 2.0]).is_err());
    }
}
