//! pSyncPIM kernel library.
//!
//! Every kernel of the paper's Table III, implemented as real PIM assembly
//! (assembled through [`psyncpim_core::isa`]) plus the host-side data
//! layout and orchestration the paper describes:
//!
//! * [`blas1`] — dense/sparse Level-1 kernels (DSWAP, DSCAL, DCOPY, DAXPY,
//!   SpAXPY, DDOT, SpDOT, DNRM2, GATHER, SCATTER),
//! * [`gemv`] — DGEMV and DTRSV,
//! * [`spmv`] — SpMV with the §V compression/distribution policy,
//! * [`spmm`] — multi-vector SpMV (SpMM) via block-diagonal expansion, the
//!   substrate for the scheduler's same-matrix job fusion,
//! * [`sptrsv`] — SpTRSV via the recursive block algorithm, level batches
//!   and the scalar-multiplication column sweep (§VI),
//! * [`device`] — the simulated pSyncPIM device configurations (1×, 3×,
//!   per-bank) and the combined kernel+host run report.
//!
//! Each kernel both *computes the real result* (the PU interpreter executes
//! the assembled program against bank memory) and *accounts time* (DRAM
//! command timing, lockstep PU back-pressure, external-bus traffic, mode
//! switches).

pub mod blas1;
pub mod costmodel;
pub mod device;
pub mod gemv;
pub mod oracle;
pub mod programs;
pub mod selftest;
pub mod spmm;
pub mod spmv;
pub mod sptrsv;

pub use costmodel::{CostEstimate, CostModel};
pub use device::{KernelRun, PimDevice};
pub use oracle::{audit_run, layout_grid, run_layout_oracle, run_oracle, OracleCase, OracleReport};
pub use selftest::{all_pass, selftest, CheckResult};
pub use spmm::{SpmmPim, SpmmResult, MAX_SPMM_WIDTH};
pub use spmv::SpmvPim;
pub use sptrsv::SptrsvPim;
