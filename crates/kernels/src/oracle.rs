//! Differential kernel oracle: run the PIM kernels against plain CPU
//! references over a randomized matrix suite and cross-check both the
//! numerics and the run-level accounting invariants.
//!
//! The [`selftest`](crate::selftest) battery checks one instance of every
//! kernel; the oracle instead sweeps *many* randomly generated inputs
//! (different sparsity structures, sizes, and degrees) through the kernel
//! families the paper evaluates — SpMV, SpMM (fused multi-vector SpMV),
//! SpTRSV, and BLAS-1 — with the independent protocol checker forced on. A kernel that produces the
//! right numbers through an illegal command stream, or that claims more
//! productive memory ops than the channels delivered bursts, fails here
//! even though a pure numerics test would pass.

use crate::blas1::Blas1Pim;
use crate::device::{KernelRun, PimDevice};
use crate::spmv::SpmvPim;
use crate::sptrsv::SptrsvPim;
use psim_sparse::dense;
use psim_sparse::partition::{DistPolicy, PartitionScheme};
use psim_sparse::triangular::{unit_triangular_from, Triangle};
use psim_sparse::{adversarial, gen, Coo, Layout, MatrixFormat, Precision};
use psyncpim_core::CoreError;

/// One differential comparison: a kernel on one generated input.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleCase {
    /// Kernel family.
    pub kernel: &'static str,
    /// Generator family the input came from.
    pub matrix: String,
    /// Problem dimension.
    pub n: usize,
    /// Nonzeros of the sparse input (0 for dense BLAS-1).
    pub nnz: usize,
    /// Largest absolute error against the CPU reference.
    pub max_err: f64,
    /// Tolerance the error was checked against.
    pub tolerance: f64,
    /// Accounting-invariant failures (empty when the run was sound).
    pub audit: Vec<String>,
    /// Whether numerics and accounting both checked out.
    pub pass: bool,
}

/// All cases of one oracle sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleReport {
    /// Every comparison performed.
    pub cases: Vec<OracleCase>,
}

impl OracleReport {
    /// `true` when every case passed.
    #[must_use]
    pub fn all_pass(&self) -> bool {
        self.cases.iter().all(|c| c.pass)
    }

    /// The failing cases.
    #[must_use]
    pub fn failures(&self) -> Vec<&OracleCase> {
        self.cases.iter().filter(|c| !c.pass).collect()
    }
}

/// Run-level accounting invariants every kernel execution must satisfy,
/// regardless of its numerics.
#[must_use]
pub fn audit_run(run: &KernelRun) -> Vec<String> {
    let mut failures = Vec::new();
    if run.violations > 0 {
        failures.push(format!(
            "protocol checker reported {} violation(s)",
            run.violations
        ));
    }
    if run.mem_ops > run.bank_bursts {
        failures.push(format!(
            "PUs consumed {} memory ops from only {} bank bursts",
            run.mem_ops, run.bank_bursts
        ));
    }
    if run.commands == 0 || run.dram_cycles == 0 {
        failures.push("run issued no DRAM commands".to_string());
    }
    if run.all_bank_commands + run.per_bank_commands != run.commands {
        failures.push(format!(
            "scope accounting leak: {} all-bank + {} per-bank != {} total",
            run.all_bank_commands, run.per_bank_commands, run.commands
        ));
    }
    failures
}

/// Deterministic splitmix64 step for deriving per-case parameters.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the `i`-th random square matrix of a sweep: the four
/// benchmark families plus the four adversarial shapes
/// ([`psim_sparse::adversarial`]), so every sweep of ≥ 8 cases crosses
/// all kernels with the partitioner's worst inputs too.
fn gen_matrix(i: usize, rng: &mut u64) -> (String, Coo) {
    let n = 40 + (splitmix(rng) % 161) as usize; // 40..=200
    let deg = 2 + (splitmix(rng) % 5) as usize; // 2..=6
    let salt = splitmix(rng);
    match i % 8 {
        0 => (format!("rmat(n={n},deg={deg})"), gen::rmat(n, deg, salt)),
        1 => {
            let bw = 2 + (splitmix(rng) % 8) as usize;
            (
                format!("banded_fem(n={n},bw={bw})"),
                gen::banded_fem(n, bw, deg, salt),
            )
        }
        2 => (
            format!("web_hubs(n={n},nnz={})", n * deg),
            gen::web_hubs(n, n * deg, salt),
        ),
        3 => (
            format!("layered_dag(n={n},deg={deg})"),
            gen::layered_dag(n, deg, 4, salt),
        ),
        4 => (
            format!("adv_hub_rows(n={n})"),
            adversarial::power_law_hubs(n, n * deg, 3, salt),
        ),
        5 => (format!("adv_arrow(n={n})"), adversarial::arrow(n, n, salt)),
        6 => (
            format!("adv_dense_blocks(n={n})"),
            adversarial::near_dense_blocks(n, 8, 4, salt),
        ),
        _ => (
            format!("adv_empty_extremes(n={n})"),
            adversarial::empty_extremes(n, salt),
        ),
    }
}

/// Sweep `cases` random inputs through SpMV, SpTRSV and BLAS-1 on the
/// device (validation forced on) and diff every result against a CPU
/// reference.
///
/// # Errors
///
/// Returns the first simulator error; a numeric mismatch or accounting
/// failure is reported in the [`OracleReport`], not as an error.
pub fn run_oracle(device: &PimDevice, cases: usize, seed: u64) -> Result<OracleReport, CoreError> {
    let device = {
        let mut d = device.clone();
        d.validate = true;
        d
    };
    let mut rng = seed ^ 0x5EED_0AC1E;
    let mut report = OracleReport::default();
    for i in 0..cases {
        let (name, a) = gen_matrix(i, &mut rng);
        let n = a.nrows();
        let x = gen::dense_vector(n, splitmix(&mut rng));
        let y = gen::dense_vector(n, splitmix(&mut rng));

        // SpMV against the COO reference.
        {
            let r = SpmvPim::new(device.clone(), Precision::Fp64).run(&a, &x)?;
            let want = a.spmv(&x);
            report
                .cases
                .push(diff("SpMV", &name, &a, &r.y, &want, 1e-9, &r.run));
        }
        // SpMM: fuse 2..=5 vectors through one pass; every fused result
        // must match the per-vector SpMV oracle output *bit-exactly* (the
        // scheduler's fusion contract, not just a tolerance check).
        {
            let width = 2 + (splitmix(&mut rng) % 4) as usize;
            let xs: Vec<Vec<f64>> = (0..width)
                .map(|_| gen::dense_vector(n, splitmix(&mut rng)))
                .collect();
            let spmm = crate::spmm::SpmmPim::new(device.clone(), Precision::Fp64);
            let r = spmm.run(&a, &xs)?;
            let mut max_err = 0.0f64;
            let mut exact = true;
            for (v, x) in xs.iter().enumerate() {
                let solo = spmm.as_spmv().run(&a, x)?;
                for (g, s) in r.ys[v].iter().zip(&solo.y) {
                    max_err = max_err.max((g - s).abs());
                    exact &= g.to_bits() == s.to_bits();
                }
            }
            let audit = audit_run(&r.run);
            report.cases.push(OracleCase {
                kernel: "SpMM",
                matrix: format!("{name} w={width}"),
                n,
                nnz: a.nnz(),
                max_err,
                tolerance: 0.0,
                pass: exact && audit.is_empty(),
                audit,
            });
        }
        // SpTRSV: solve L x = b for a unit-triangular L built from the
        // matrix pattern; the exact solution is the x we built b from.
        {
            let t = unit_triangular_from(&a, Triangle::Lower)
                .map_err(|e| CoreError::Execution(e.to_string()))?;
            let b = t.matvec(&x);
            let r = SptrsvPim::new(device.clone()).run(&t, &b)?;
            report
                .cases
                .push(diff("SpTRSV", &name, &a, &r.x, &x, 1e-7, &r.run));
        }
        // BLAS-1: one axpy + one dot per case.
        {
            let blas = Blas1Pim::new(device.clone(), Precision::Fp64);
            let alpha = -0.5 + (splitmix(&mut rng) % 1000) as f64 / 250.0;
            let r = blas.daxpy(alpha, &x, &y)?;
            let mut want = y.clone();
            dense::axpy(alpha, &x, &mut want);
            report
                .cases
                .push(diff("DAXPY", &name, &a, &r.v, &want, 1e-9, &r.run));
            let d = blas.ddot(&x, &y)?;
            let want = dense::dot(&x, &y);
            let max_err = (d.s - want).abs();
            let tolerance = 1e-9_f64.max(want.abs() * 1e-12);
            let audit = audit_run(&d.run);
            report.cases.push(OracleCase {
                kernel: "DDOT",
                matrix: name.clone(),
                n,
                nnz: 0,
                max_err,
                tolerance,
                pass: max_err <= tolerance && audit.is_empty(),
                audit,
            });
        }
    }
    Ok(report)
}

/// The fixed layout grid the layout oracle and the autotuner ablation
/// sweep: one representative per format family crossed with every
/// partition scheme kind and both placement policies.
#[must_use]
pub fn layout_grid() -> Vec<Layout> {
    vec![
        Layout::baseline(), // coo/1d/rr — the paper's configuration
        Layout {
            format: MatrixFormat::Csr,
            scheme: PartitionScheme::Row1D,
            policy: DistPolicy::LeastLoaded,
        },
        Layout {
            format: MatrixFormat::Coo,
            scheme: PartitionScheme::Grid2D { col_blocks: 2 },
            policy: DistPolicy::RoundRobin,
        },
        Layout {
            format: MatrixFormat::Coo,
            scheme: PartitionScheme::Balanced2D { col_blocks: 4 },
            policy: DistPolicy::LeastLoaded,
        },
        Layout {
            format: MatrixFormat::Bcsr { block: 4 },
            scheme: PartitionScheme::Row1D,
            policy: DistPolicy::RoundRobin,
        },
        Layout {
            format: MatrixFormat::Bcoo { block: 8 },
            scheme: PartitionScheme::Balanced2D { col_blocks: 2 },
            policy: DistPolicy::RoundRobin,
        },
    ]
}

/// Differential sweep over every layout × adversarial shape combination:
/// SpMV against the CPU reference and a width-2 SpMM against its own
/// solo runs (bit-exact — the fusion contract holds per layout), with
/// validation forced on so the protocol checker rides along.
///
/// # Errors
///
/// Returns the first simulator error; mismatches land in the report.
pub fn run_layout_oracle(
    device: &PimDevice,
    n: usize,
    seed: u64,
) -> Result<OracleReport, CoreError> {
    let device = {
        let mut d = device.clone();
        d.validate = true;
        d
    };
    let mut rng = seed ^ 0x1A10_0AC1E;
    let mut report = OracleReport::default();
    for (name, a) in adversarial::suite(n, splitmix(&mut rng)) {
        let want_x = gen::dense_vector(a.ncols(), splitmix(&mut rng));
        let want = a.spmv(&want_x);
        for layout in layout_grid() {
            let tag = format!("{name} {}", layout.label());
            let spmv = SpmvPim::new(device.clone(), Precision::Fp64).with_layout(layout);
            let r = spmv.run(&a, &want_x)?;
            report
                .cases
                .push(diff("SpMV", &tag, &a, &r.y, &want, 1e-9, &r.run));

            let xs: Vec<Vec<f64>> = (0..2)
                .map(|_| gen::dense_vector(a.ncols(), splitmix(&mut rng)))
                .collect();
            let spmm =
                crate::spmm::SpmmPim::new(device.clone(), Precision::Fp64).with_layout(layout);
            let r = spmm.run(&a, &xs)?;
            let mut max_err = 0.0f64;
            let mut exact = true;
            for (v, x) in xs.iter().enumerate() {
                let solo = spmm.as_spmv().run(&a, x)?;
                for (g, s) in r.ys[v].iter().zip(&solo.y) {
                    max_err = max_err.max((g - s).abs());
                    exact &= g.to_bits() == s.to_bits();
                }
            }
            let audit = audit_run(&r.run);
            report.cases.push(OracleCase {
                kernel: "SpMM",
                matrix: format!("{tag} w=2"),
                n: a.nrows(),
                nnz: a.nnz(),
                max_err,
                tolerance: 0.0,
                pass: exact && audit.is_empty(),
                audit,
            });
        }
    }
    Ok(report)
}

fn diff(
    kernel: &'static str,
    matrix: &str,
    a: &Coo,
    got: &[f64],
    want: &[f64],
    tolerance: f64,
    run: &KernelRun,
) -> OracleCase {
    let max_err = got
        .iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    let audit = audit_run(run);
    OracleCase {
        kernel,
        matrix: matrix.to_string(),
        n: a.nrows(),
        nnz: a.nnz(),
        max_err,
        tolerance,
        pass: got.len() == want.len() && max_err <= tolerance && audit.is_empty(),
        audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn oracle_sweep_passes_on_tiny_device() {
        // 8 cases covers every generator family once, adversarial
        // shapes included.
        let report = run_oracle(&PimDevice::tiny(2), 8, 0xC0FFEE).expect("simulator ok");
        assert_eq!(report.cases.len(), 40); // 5 kernels × 8 cases
        assert!(report.all_pass(), "{:?}", report.failures());
    }

    #[test]
    fn layout_oracle_passes_every_layout_times_shape() {
        let report = run_layout_oracle(&PimDevice::tiny(2), 48, 0xBEEF).expect("simulator ok");
        // 4 adversarial shapes × 6 layouts × (SpMV + SpMM).
        assert_eq!(report.cases.len(), 48);
        assert!(report.all_pass(), "{:?}", report.failures());
    }

    #[test]
    fn oracle_covers_perbank_mode_too() {
        let mut dev = PimDevice::tiny(2);
        dev.mode = psyncpim_core::ExecMode::PerBank;
        let report = run_oracle(&dev, 1, 7).expect("simulator ok");
        assert!(report.all_pass(), "{:?}", report.failures());
    }

    #[test]
    fn audit_flags_inconsistent_runs() {
        let mut run = KernelRun {
            commands: 10,
            all_bank_commands: 10,
            dram_cycles: 100,
            mem_ops: 5,
            bank_bursts: 8,
            ..Default::default()
        };
        assert!(audit_run(&run).is_empty());
        run.violations = 3;
        run.mem_ops = 9; // more consumed than delivered
        run.per_bank_commands = 1; // breaks scope accounting
        let audit = audit_run(&run);
        assert_eq!(audit.len(), 3, "{audit:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn random_spmv_matches_reference_with_clean_protocol(
            n in 30usize..120,
            deg in 2usize..6,
            salt in 0u64..1000,
        ) {
            let a = gen::rmat(n, deg, salt);
            let x = gen::dense_vector(n, salt ^ 1);
            let mut dev = PimDevice::tiny(2);
            dev.validate = true;
            let r = SpmvPim::new(dev, Precision::Fp64).run(&a, &x).unwrap();
            let want = a.spmv(&x);
            let max_err = r
                .y
                .iter()
                .zip(&want)
                .map(|(g, w)| (g - w).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(max_err <= 1e-9, "max_err {}", max_err);
            prop_assert_eq!(r.run.violations, 0);
            prop_assert!(r.run.mem_ops <= r.run.bank_bursts);
        }
    }
}
