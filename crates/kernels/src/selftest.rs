//! Device self-test: a quick battery that runs one instance of every
//! kernel family on a device and checks it against host references.
//!
//! Downstream users call [`selftest`] after changing device parameters
//! (row size, bank count, timing) to confirm the configuration still
//! executes every kernel correctly — the simulation equivalent of a
//! post-bring-up vector test.

use crate::blas1::Blas1Pim;
use crate::device::PimDevice;
use crate::gemv::Gemv;
use crate::spmv::SpmvPim;
use crate::sptrsv::SptrsvPim;
use psim_sparse::dense::{self, SparseVec};
use psim_sparse::triangular::{unit_triangular_from, Triangle};
use psim_sparse::{gen, Precision};

/// Outcome of one self-test item.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Kernel name.
    pub kernel: &'static str,
    /// Largest absolute error against the host reference.
    pub max_err: f64,
    /// Whether the kernel passed (error below its tolerance).
    pub pass: bool,
}

/// Run the battery on a device; returns one result per kernel, plus a
/// final `protocol` entry counting violations found by the independent
/// JEDEC checker (the battery always runs with validation forced on).
///
/// # Errors
///
/// Returns the first simulator error encountered (a failing *check* is
/// reported in the results, not as an error).
pub fn selftest(device: &PimDevice) -> Result<Vec<CheckResult>, psyncpim_core::CoreError> {
    let device = {
        let mut d = device.clone();
        d.validate = true;
        d
    };
    let mut out = Vec::new();
    let mut violations = 0u64;
    let tol = 1e-9;
    let n = 300usize;
    let a = gen::rmat(n, 5, 0xA11CE);
    let x = gen::dense_vector(n, 1);
    let y = gen::dense_vector(n, 2);

    // SpMV.
    {
        let r = SpmvPim::new(device.clone(), Precision::Fp64).run(&a, &x)?;
        let want = a.spmv(&x);
        out.push(check("SpMV", &r.y, &want, tol));
        violations += r.run.violations;
    }
    // SpMM (fused 3-vector SpMV): must be bit-exact vs per-vector SpMV.
    {
        let xs = vec![x.clone(), y.clone(), gen::dense_vector(n, 6)];
        let spmm = crate::spmm::SpmmPim::new(device.clone(), Precision::Fp64);
        let r = spmm.run(&a, &xs)?;
        let mut max_err = 0.0f64;
        for (v, xv) in xs.iter().enumerate() {
            let solo = spmm.as_spmv().run(&a, xv)?;
            for (g, s) in r.ys[v].iter().zip(&solo.y) {
                if g.to_bits() != s.to_bits() {
                    max_err = max_err.max((g - s).abs()).max(f64::MIN_POSITIVE);
                }
            }
        }
        out.push(CheckResult {
            kernel: "SpMM",
            max_err,
            pass: max_err == 0.0,
        });
        violations += r.run.violations;
    }
    // SpTRSV (lower).
    {
        let t = unit_triangular_from(&a, Triangle::Lower)
            .map_err(|e| psyncpim_core::CoreError::Execution(e.to_string()))?;
        let b = t.matvec(&x);
        let r = SptrsvPim::new(device.clone()).run(&t, &b)?;
        out.push(check("SpTRSV", &r.x, &x, 1e-7));
        violations += r.run.violations;
    }
    let blas = Blas1Pim::new(device.clone(), Precision::Fp64);
    // DCOPY / DSCAL / DAXPY.
    {
        let r = blas.dcopy(&x)?;
        out.push(check("DCOPY", &r.v, &x, 0.0));
        violations += r.run.violations;
        let r = blas.dscal(1.5, &x)?;
        let want: Vec<f64> = x.iter().map(|v| 1.5 * v).collect();
        out.push(check("DSCAL", &r.v, &want, tol));
        violations += r.run.violations;
        let r = blas.daxpy(-0.5, &x, &y)?;
        let mut want = y.clone();
        dense::axpy(-0.5, &x, &mut want);
        out.push(check("DAXPY", &r.v, &want, tol));
        violations += r.run.violations;
    }
    // DDOT / DNRM2.
    {
        let d = blas.ddot(&x, &y)?;
        out.push(scalar_check("DDOT", d.s, dense::dot(&x, &y), tol));
        violations += d.run.violations;
        let m = blas.dnrm2(&x)?;
        out.push(scalar_check("DNRM2", m.s, dense::nrm2(&x), tol));
        violations += m.run.violations;
    }
    // GATHER / SCATTER / SpAXPY / SpDOT.
    {
        let mut sparse_src = vec![0.0; n];
        for i in (0..n).step_by(7) {
            sparse_src[i] = i as f64 + 0.5;
        }
        let (sv, gr) = blas.gather(&sparse_src)?;
        out.push(check("GATHER", &sv.to_dense(), &sparse_src, 0.0));
        violations += gr.violations;
        let r = blas.scatter(&sv, &vec![0.0; n])?;
        out.push(check("SCATTER", &r.v, &sparse_src, 0.0));
        violations += r.run.violations;
        let sp = SparseVec::gather(&sparse_src);
        let r = blas.spaxpy(2.0, &sp, &y)?;
        let mut want = y.clone();
        dense::spaxpy(2.0, &sp, &mut want);
        out.push(check("SpAXPY", &r.v, &want, tol));
        violations += r.run.violations;
        let d = blas.spdot(&sp, &y)?;
        out.push(scalar_check("SpDOT", d.s, dense::spdot(&sp, &y), tol));
        violations += d.run.violations;
    }
    // DGEMV.
    {
        let (nr, nc) = (24usize, 20usize);
        let m = gen::dense_vector(nr * nc, 3);
        let xg = gen::dense_vector(nc, 4);
        let r = Gemv::new(device.clone(), Precision::Fp64).dgemv(&m, nr, nc, &xg)?;
        let want: Vec<f64> = (0..nr)
            .map(|i| (0..nc).map(|j| m[i * nc + j] * xg[j]).sum())
            .collect();
        out.push(check("DGEMV", &r.y, &want, tol));
        violations += r.run.violations;
    }
    // Every command stream above replayed through the independent JEDEC
    // checker; the battery fails if any stream broke the protocol.
    out.push(CheckResult {
        kernel: "protocol",
        max_err: violations as f64,
        pass: violations == 0,
    });
    Ok(out)
}

/// `true` when every check passed.
#[must_use]
pub fn all_pass(results: &[CheckResult]) -> bool {
    results.iter().all(|r| r.pass)
}

fn check(kernel: &'static str, got: &[f64], want: &[f64], tol: f64) -> CheckResult {
    let max_err = got
        .iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    CheckResult {
        kernel,
        max_err,
        pass: got.len() == want.len() && max_err <= tol.max(f64::EPSILON * 64.0),
    }
}

fn scalar_check(kernel: &'static str, got: f64, want: f64, tol: f64) -> CheckResult {
    let max_err = (got - want).abs();
    CheckResult {
        kernel,
        max_err,
        pass: max_err <= tol.max(want.abs() * 1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_passes_on_tiny_device() {
        let results = selftest(&PimDevice::tiny(2)).expect("simulator ok");
        assert_eq!(results.len(), 14);
        for r in &results {
            assert!(r.pass, "{} failed with max_err {}", r.kernel, r.max_err);
        }
        assert!(all_pass(&results));
        let protocol = results.last().unwrap();
        assert_eq!(protocol.kernel, "protocol");
        assert_eq!(protocol.max_err, 0.0, "checker found violations");
    }

    #[test]
    fn battery_passes_on_event_tier() {
        // The event-driven engine tier must sustain the full battery,
        // protocol checker included (selftest forces validation on).
        let mut device = PimDevice::tiny(2);
        device.tier = psyncpim_core::EngineTier::Event;
        let results = selftest(&device).expect("simulator ok");
        assert!(all_pass(&results), "{results:?}");
    }

    #[test]
    fn battery_passes_on_nonstandard_row_size() {
        let mut device = PimDevice::tiny(1);
        device.hbm.num_cols = 32; // 512 B rows
        let results = selftest(&device).expect("simulator ok");
        assert!(all_pass(&results), "{results:?}");
    }
}
