//! SpMM: multi-vector SpMV sharing one matrix traversal.
//!
//! The service-mode scheduler coalesces concurrent SpMV jobs that share a
//! matrix into one SpMM pass (SparseP's observation: real PIM wins come
//! from reusing a resident matrix across vectors). The kernel reuses the
//! verified batched stream program unchanged and pushes the fusion into
//! the data layout — a *block-diagonal expansion*:
//!
//! * each bank's submatrix entries are replicated once per fused vector
//!   `v`, with indices shifted to `(row + v·max_out, col + v·max_in)`;
//! * the gathered input slices are stacked into one region of
//!   `width · max_in` elements, the outputs into `width · max_out`;
//! * one kernel launch per wave then computes all `width` products, so
//!   the per-launch fixed costs — the mode-switch cycle, CRF programming,
//!   completion polls, and the partition itself — are paid once instead
//!   of `width` times.
//!
//! Because the expansion keeps every per-vector entry stream in its
//! original order and every `(v, row)` output slot disjoint, each fused
//! vector's result is **bit-identical** to running [`SpmvPim`] on that
//! vector alone — the scheduler can scatter fused results back to the
//! original jobs without any numeric disclaimer. Width 1 degenerates to
//! exactly the SpMV data path (same pairs, same regions, same bytes).

use crate::device::{
    batched_sparse_bindings, mode_cycle, pack_triples, triple_pairs, KernelRun, PimDevice,
};
use crate::programs;
use crate::spmv::SpmvPim;
use psim_sparse::partition::{
    BankPartition, DistPolicy, PartitionConfig, PartitionScheme, PartitionStats, SubMatrix,
};
use psim_sparse::{Coo, Layout, MatrixFormat, Precision};
use psyncpim_core::isa::{assemble, BinaryOp};
use psyncpim_core::memory::Binding;
use psyncpim_core::CoreError;

/// Largest fusion width the kernel accepts. The expansion multiplies the
/// per-bank stream length by the width, so very wide fusions stop
/// amortizing fixed costs and start serializing unrelated jobs behind one
/// launch; 16 keeps the win while bounding the blast radius of one fused
/// group.
pub const MAX_SPMM_WIDTH: usize = 16;

/// SpMM kernel runner (multi-vector [`SpmvPim`]).
#[derive(Debug, Clone)]
pub struct SpmmPim {
    /// Target device.
    pub device: PimDevice,
    /// Element precision.
    pub precision: Precision,
    /// Submatrix placement policy.
    pub policy: DistPolicy,
    /// Semiring multiply.
    pub mul: BinaryOp,
    /// Semiring accumulate.
    pub acc: BinaryOp,
    /// Matrix compression (paper Figure 6).
    pub compress: bool,
    /// Storage format the matrix executes from (see [`SpmvPim::format`]).
    pub format: MatrixFormat,
    /// Partition scheme (see [`SpmvPim::scheme`]).
    pub scheme: PartitionScheme,
}

/// Result of a distributed SpMM.
#[derive(Debug, Clone)]
pub struct SpmmResult {
    /// One product `y_v = A x_v` per fused vector, in input order.
    pub ys: Vec<Vec<f64>>,
    /// Timing/energy/commands for the whole fused pass.
    pub run: KernelRun,
    /// Distribution statistics of the partition.
    pub stats: PartitionStats,
    /// Number of sequential waves executed.
    pub waves: usize,
    /// Fused width (`ys.len()`).
    pub width: usize,
}

impl SpmmPim {
    /// Runner on the given device at a precision (arithmetic semiring).
    #[must_use]
    pub fn new(device: PimDevice, precision: Precision) -> Self {
        SpmmPim {
            device,
            precision,
            policy: DistPolicy::RoundRobin,
            mul: BinaryOp::Mul,
            acc: BinaryOp::Add,
            compress: true,
            format: MatrixFormat::Coo,
            scheme: PartitionScheme::Row1D,
        }
    }

    /// Runner over an arbitrary semiring `(mul, acc)`.
    #[must_use]
    pub fn with_semiring(
        device: PimDevice,
        precision: Precision,
        mul: BinaryOp,
        acc: BinaryOp,
    ) -> Self {
        SpmmPim {
            device,
            precision,
            policy: DistPolicy::RoundRobin,
            mul,
            acc,
            compress: true,
            format: MatrixFormat::Coo,
            scheme: PartitionScheme::Row1D,
        }
    }

    /// Adopt a tuned [`Layout`] (format, scheme, policy) wholesale.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.format = layout.format;
        self.scheme = layout.scheme;
        self.policy = layout.policy;
        self
    }

    /// The equivalent single-vector runner (shared partition/semiring
    /// configuration) — what each fused vector would have run alone.
    #[must_use]
    pub fn as_spmv(&self) -> SpmvPim {
        SpmvPim {
            device: self.device.clone(),
            precision: self.precision,
            policy: self.policy,
            mul: self.mul,
            acc: self.acc,
            compress: self.compress,
            format: self.format,
            scheme: self.scheme,
        }
    }

    /// Compute `y_v = A x_v` for every fused vector in one pass.
    ///
    /// # Errors
    ///
    /// Propagates engine/program failures.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty, wider than [`MAX_SPMM_WIDTH`], or any
    /// vector's length differs from `a.ncols()`.
    pub fn run(&self, a: &Coo, xs: &[Vec<f64>]) -> Result<SpmmResult, CoreError> {
        let width = xs.len();
        assert!(
            (1..=MAX_SPMM_WIDTH).contains(&width),
            "spmm width {width} outside 1..={MAX_SPMM_WIDTH}"
        );
        for x in xs {
            assert_eq!(x.len(), a.ncols(), "spmm operand length mismatch");
        }
        assert!(
            !self.format.is_blocked() || (self.mul == BinaryOp::Mul && self.acc == BinaryOp::Add),
            "blocked formats require the arithmetic (Mul, Add) semiring"
        );
        let expanded = self.format.expand(a);
        let a = expanded.as_ref().unwrap_or(a);
        let nbanks = self.device.total_banks();
        let part = BankPartition::build(
            a,
            PartitionConfig {
                num_banks: nbanks,
                row_bytes: self.device.hbm.row_bytes(),
                precision: self.precision,
                policy: self.policy,
                compress: self.compress,
                scheme: self.scheme,
            },
        );
        let stats = part.stats();

        let mut per_bank: Vec<Vec<&SubMatrix>> = vec![Vec::new(); nbanks];
        for s in part.submatrices() {
            per_bank[s.bank].push(s);
        }
        let waves = per_bank.iter().map(Vec::len).max().unwrap_or(0);

        let lanes = self.precision.lanes();
        let ebytes = self.precision.bytes();
        let banks_per_cube = self.device.hbm.total_banks();
        let program = assemble(&programs::spmm_stream(
            self.precision,
            &self.mul.to_string(),
            &self.acc.to_string(),
        ))?;
        self.device.verify_program(&program)?;
        let identity = self.acc.identity();

        let mut host = self.device.make_host();
        let mut run = KernelRun::default();
        let mut ys = vec![vec![identity; a.nrows()]; width];

        for wave in 0..waves {
            // Broadcast this wave's gathered input slices — one slice per
            // fused vector per bank (the matrix-side traversal is shared;
            // the vector-side traffic still scales with the width).
            let bcast: usize = per_bank
                .iter()
                .filter_map(|q| q.get(wave))
                .map(|s| s.input_len() * ebytes * width)
                .sum();
            host.broadcast(bcast);
            mode_cycle(&mut host, program.len());

            let mut wave_seconds = 0.0f64;
            let mut wave_cycles = 0u64;
            let mut wave_wall = psyncpim_core::CycleBreakdown::default();
            let mut collect_bytes = 0usize;
            for cube in 0..self.device.cubes {
                let lo = cube * banks_per_cube;
                let max_nnz = (0..banks_per_cube)
                    .filter_map(|b| per_bank[lo + b].get(wave))
                    .map(|s| s.nnz())
                    .max()
                    .unwrap_or(0);
                if max_nnz == 0 {
                    continue;
                }
                // The block-diagonal stream is `width` copies of the
                // longest bank stream; the sentinel pair still closes it.
                let pairs = triple_pairs(width * max_nnz, lanes);
                let max_in = (0..banks_per_cube)
                    .filter_map(|b| per_bank[lo + b].get(wave))
                    .map(|s| s.input_len())
                    .max()
                    .unwrap_or(1)
                    .max(1);
                let max_out = (0..banks_per_cube)
                    .filter_map(|b| per_bank[lo + b].get(wave))
                    .map(|s| s.output_len())
                    .max()
                    .unwrap_or(1)
                    .max(1);

                let mut engine = self.device.make_engine();
                let mut bindings: Vec<Option<Binding>> = Vec::new();
                for b in 0..banks_per_cube {
                    let sub = per_bank[lo + b].get(wave);
                    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
                    let mut xg = vec![0.0; width * max_in];
                    if let Some(s) = sub {
                        entries.reserve(width * s.entries.len());
                        for (v, x) in xs.iter().enumerate() {
                            let (dr, dc) = ((v * max_out) as u32, (v * max_in) as u32);
                            entries
                                .extend(s.entries.iter().map(|e| (e.row + dr, e.col + dc, e.val)));
                            for (i, &c) in s.cols.iter().enumerate() {
                                xg[v * max_in + i] = self.precision.quantize(x[c as usize]);
                            }
                        }
                    }
                    let triples = pack_triples(&entries, lanes, pairs, self.precision);
                    let mem = engine.mem_mut(b);
                    let rt = mem.alloc("triples", ebytes, triples);
                    let rx = mem.alloc("x", ebytes, xg);
                    let ry = mem.alloc("y", ebytes, vec![identity; width * max_out]);
                    if b == 0 {
                        bindings = batched_sparse_bindings(rt, rx, ry, lanes);
                    }
                }
                engine.load_kernel(program.clone(), bindings.clone())?;
                let report = engine.run()?;
                wave_seconds = wave_seconds.max(report.seconds);
                if report.dram_cycles > wave_cycles {
                    wave_cycles = report.dram_cycles;
                    if let Some(m) = &report.metrics {
                        wave_wall = m.wall();
                    }
                }
                run.absorb_engine(&report);

                // Host accumulates the touched rows of every fused vector.
                let y_region = bindings[10].expect("output bound").region;
                for b in 0..banks_per_cube {
                    if let Some(s) = per_bank[lo + b].get(wave) {
                        let data = engine.mem(b).region(y_region).data();
                        let mut touched: Vec<u32> = s.entries.iter().map(|e| e.row).collect();
                        touched.sort_unstable();
                        touched.dedup();
                        for (v, y) in ys.iter_mut().enumerate() {
                            for &lr in &touched {
                                let g = s.row_lo + lr as usize;
                                y[g] = self.acc.apply(data[v * max_out + lr as usize], y[g]);
                            }
                        }
                        collect_bytes += width * touched.len() * (ebytes + 4);
                    }
                }
            }
            run.kernel_s += wave_seconds;
            run.dram_cycles += wave_cycles;
            run.attr.add_all(&wave_wall);
            run.phases += 1;
            host.collect(collect_bytes);
        }
        run.absorb_host(&host);

        Ok(SpmmResult {
            ys,
            run,
            stats,
            waves,
            width,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::gen;

    fn validated(channels: usize) -> PimDevice {
        let mut d = PimDevice::tiny(channels);
        d.validate = true;
        d
    }

    fn vectors(n: usize, width: usize, seed: u64) -> Vec<Vec<f64>> {
        (0..width)
            .map(|v| gen::dense_vector(n, seed + v as u64))
            .collect()
    }

    #[test]
    fn width_one_is_bit_identical_to_spmv() {
        // The degenerate fusion must reproduce the SpMV data path exactly:
        // same result bits AND the same accounting (cycles, commands,
        // bytes) — there is no "SpMM tax" on an unfused job.
        for (a, seed) in [
            (gen::rmat(96, 5, 11), 3u64),
            (gen::banded_fem(700, 10, 5, 7), 5),
            (gen::web_hubs(128, 512, 9), 8),
        ] {
            let x = gen::dense_vector(a.ncols(), seed);
            let spmm = SpmmPim::new(validated(2), Precision::Fp64);
            let m = spmm.run(&a, std::slice::from_ref(&x)).unwrap();
            let s = spmm.as_spmv().run(&a, &x).unwrap();
            let bits =
                |v: &[f64]| -> Vec<u64> { v.iter().map(|f| f.to_bits()).collect::<Vec<_>>() };
            assert_eq!(bits(&m.ys[0]), bits(&s.y));
            assert_eq!(m.run.dram_cycles, s.run.dram_cycles);
            assert_eq!(m.run.commands, s.run.commands);
            assert_eq!(m.run.external_bytes, s.run.external_bytes);
            assert_eq!(m.run.kernel_s.to_bits(), s.run.kernel_s.to_bits());
            assert_eq!(m.run.host_s.to_bits(), s.run.host_s.to_bits());
            assert_eq!(m.waves, s.waves);
            assert_eq!(m.run.violations, 0);
        }
    }

    #[test]
    fn fused_vectors_match_solo_spmv_bitwise() {
        // The scheduler's fusion contract: every fused vector's result is
        // bit-identical to the per-job SpMV it replaced. The expansion
        // keeps per-vector entry order and disjoint (v, row) slots, so the
        // accumulation order per output element is exactly the solo order.
        for (a, w) in [
            (gen::rmat(96, 5, 11), 4usize),
            (gen::banded_fem(500, 8, 4, 3), 3),
            (gen::web_hubs(120, 480, 2), MAX_SPMM_WIDTH),
        ] {
            let xs = vectors(a.ncols(), w, 17);
            let spmm = SpmmPim::new(validated(2), Precision::Fp64);
            let fused = spmm.run(&a, &xs).unwrap();
            assert_eq!(fused.width, w);
            assert_eq!(fused.run.violations, 0);
            let solo = spmm.as_spmv();
            for (v, x) in xs.iter().enumerate() {
                let want = solo.run(&a, x).unwrap().y;
                for (i, (g, s)) in fused.ys[v].iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        s.to_bits(),
                        "vector {v} row {i}: fused {g} vs solo {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn fusion_amortizes_fixed_costs() {
        // One fused pass must be cheaper than running the vectors one by
        // one: the matrix traversal is shared and the per-launch overheads
        // (mode switches, CRF programming, completion polls) are paid once
        // per wave instead of once per vector.
        let a = gen::rmat(128, 4, 21);
        let w = 8usize;
        let xs = vectors(a.ncols(), w, 5);
        let spmm = SpmmPim::new(PimDevice::tiny(2), Precision::Fp64);
        let fused = spmm.run(&a, &xs).unwrap().run.total_s();
        let solo: f64 = xs
            .iter()
            .map(|x| spmm.as_spmv().run(&a, x).unwrap().run.total_s())
            .sum();
        assert!(
            fused < solo,
            "fused {fused:.3e}s must beat {w} solo runs {solo:.3e}s"
        );
    }

    #[test]
    fn mixed_precision_matches_quantized_reference() {
        let a = gen::rmat(80, 3, 13);
        let xs = vectors(a.ncols(), 3, 29);
        for p in [Precision::Fp32, Precision::Int8] {
            let fused = SpmmPim::new(validated(2), p).run(&a, &xs).unwrap();
            let solo = SpmmPim::new(validated(2), p).as_spmv();
            for (v, x) in xs.iter().enumerate() {
                let want = solo.run(&a, x).unwrap().y;
                for (g, s) in fused.ys[v].iter().zip(&want) {
                    assert_eq!(g.to_bits(), s.to_bits(), "{p:?} vector {v}");
                }
            }
        }
    }

    #[test]
    fn semiring_spmm_matches_solo() {
        // Min-plus fusion (SSSP relaxation steps for several frontiers).
        let a = gen::rmat(64, 3, 31);
        let xs = vectors(a.ncols(), 2, 41);
        let spmm =
            SpmmPim::with_semiring(validated(1), Precision::Fp64, BinaryOp::Add, BinaryOp::Min);
        let fused = spmm.run(&a, &xs).unwrap();
        for (v, x) in xs.iter().enumerate() {
            let want = spmm.as_spmv().run(&a, x).unwrap().y;
            for (g, s) in fused.ys[v].iter().zip(&want) {
                assert_eq!(g.to_bits(), s.to_bits(), "vector {v}");
            }
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = Coo::new(10, 10);
        let res = SpmmPim::new(PimDevice::tiny(2), Precision::Fp64)
            .run(&a, &vectors(10, 2, 1))
            .unwrap();
        assert_eq!(res.ys, vec![vec![0.0; 10]; 2]);
        assert_eq!(res.waves, 0);
    }

    #[test]
    #[should_panic(expected = "spmm width")]
    fn zero_width_is_rejected() {
        let a = Coo::new(4, 4);
        let _ = SpmmPim::new(PimDevice::tiny(1), Precision::Fp64).run(&a, &[]);
    }
}
