//! Dense Level-2 kernels: DGEMV and DTRSV (Table III).
//!
//! DGEMV stripes matrix rows across banks; each bank streams its rows
//! against a replicated copy of `x`, accumulating each row's dot product in
//! the SRF and appending it to the output region (nested ORDER'd loops,
//! paper §IV-F). Wide matrices are split into column panels so the inner
//! loop count fits the 10-bit JUMP immediate; the host sums the per-panel
//! partials.
//!
//! DTRSV reuses the sparse triangular machinery on the dense triangle's
//! full pattern — the dense solve is the degenerate (fully dense) case of
//! the paper's SpTRSV algorithm.

use crate::device::{mode_cycle, KernelRun, PimDevice};
use crate::programs;
use crate::sptrsv::SptrsvPim;
use psim_sparse::triangular::{Triangle, UnitTriangular};
use psim_sparse::{Coo, Precision};
use psyncpim_core::isa::assemble;
use psyncpim_core::{CoreError, RegionId};

/// Dense Level-2 kernel runner.
#[derive(Debug, Clone)]
pub struct Gemv {
    /// Target device.
    pub device: PimDevice,
    /// Element precision.
    pub precision: Precision,
}

/// DGEMV result.
#[derive(Debug, Clone)]
pub struct GemvResult {
    /// `y = A x`.
    pub y: Vec<f64>,
    /// Timing/energy/commands.
    pub run: KernelRun,
    /// Column panels executed.
    pub panels: usize,
}

impl Gemv {
    /// Runner on a device at a precision.
    #[must_use]
    pub fn new(device: PimDevice, precision: Precision) -> Self {
        Gemv { device, precision }
    }

    /// Compute `y = A x` for a dense row-major `A` of shape
    /// `(nrows, ncols)`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != nrows * ncols` or `x.len() != ncols`.
    pub fn dgemv(
        &self,
        a: &[f64],
        nrows: usize,
        ncols: usize,
        x: &[f64],
    ) -> Result<GemvResult, CoreError> {
        assert_eq!(a.len(), nrows * ncols, "matrix shape mismatch");
        assert_eq!(x.len(), ncols, "operand length mismatch");
        let lanes = self.precision.lanes();
        let ebytes = self.precision.bytes();
        let nbanks = self.device.hbm.total_banks();
        let rows_per_bank = nrows.div_ceil(nbanks).max(1);
        // Panel width: inner loop count must fit the 10-bit immediate.
        let max_chunks_per_row = 1023usize;
        let panel_cols = (max_chunks_per_row * lanes).min(ncols.max(1));
        let panels = ncols.div_ceil(panel_cols).max(1);

        let mut y = vec![0.0; nrows];
        let mut run = KernelRun::default();

        for panel in 0..panels {
            let c0 = panel * panel_cols;
            let c1 = (c0 + panel_cols).min(ncols);
            let chunks = (c1 - c0).div_ceil(lanes).max(1);
            let padded_cols = chunks * lanes;

            let mut engine = self.device.make_engine();
            let mut bindings: Vec<Option<RegionId>> = Vec::new();
            for b in 0..nbanks {
                // Row stripe of A restricted to the panel, row-major,
                // each row padded to whole bursts; x replicated per row
                // (the PU re-reads x for every row).
                let mut astripe = Vec::with_capacity(rows_per_bank * padded_cols);
                let mut xrep = Vec::with_capacity(rows_per_bank * padded_cols);
                for i in 0..rows_per_bank {
                    let r = b * rows_per_bank + i;
                    for c in c0..c0 + padded_cols {
                        let av = if r < nrows && c < c1 {
                            self.precision.quantize(a[r * ncols + c])
                        } else {
                            0.0
                        };
                        astripe.push(av);
                        let xv = if c < c1 {
                            self.precision.quantize(x[c])
                        } else {
                            0.0
                        };
                        xrep.push(xv);
                    }
                }
                let mem = engine.mem_mut(b);
                let ra = mem.alloc("a-stripe", ebytes, astripe);
                let rx = mem.alloc("x-rep", ebytes, xrep);
                let ry = mem.alloc_zeroed("y-stripe", ebytes, rows_per_bank);
                if b == 0 {
                    bindings = vec![
                        Some(ra),
                        Some(rx),
                        None,
                        None,
                        None,
                        Some(ry),
                        None,
                        None,
                        None,
                        None,
                    ];
                }
            }
            let asm = programs::dgemv(self.precision, rows_per_bank as u16, chunks as u16);
            let program = assemble(&asm)?;
            self.device.verify_program(&program)?;
            let mut host = self.device.make_host();
            mode_cycle(&mut host, program.len());
            engine.load_kernel(program, bindings.clone())?;
            engine.set_srf_all(0.0);
            let report = engine.run()?;
            run.kernel_s += report.seconds;
            run.dram_cycles += report.dram_cycles;
            run.absorb_wall(&report);
            run.absorb_engine(&report);
            run.phases += 1;
            if panels > 1 {
                // Host accumulates per-panel partials.
                host.collect(nrows * ebytes);
            }
            run.absorb_host(&host);

            let ry = bindings[5].expect("output bound");
            for b in 0..nbanks {
                let data = engine.mem(b).region(ry).data();
                for (i, &d) in data.iter().enumerate().take(rows_per_bank) {
                    let r = b * rows_per_bank + i;
                    if r < nrows {
                        y[r] += d;
                    }
                }
            }
        }
        Ok(GemvResult { y, run, panels })
    }

    /// DTRSV: solve the dense unit triangle `T x = b` by running the
    /// SpTRSV pipeline on its full pattern.
    ///
    /// # Errors
    ///
    /// Propagates engine failures or [`CoreError::Execution`] if the dense
    /// triangle is malformed.
    pub fn dtrsv(
        &self,
        a: &[f64],
        n: usize,
        triangle: Triangle,
        b: &[f64],
    ) -> Result<(Vec<f64>, KernelRun), CoreError> {
        assert_eq!(a.len(), n * n, "matrix shape mismatch");
        let mut strict = Coo::new(n, n);
        for r in 0..n {
            for c in 0..n {
                let keep = match triangle {
                    Triangle::Lower => r > c,
                    Triangle::Upper => r < c,
                };
                if keep && a[r * n + c] != 0.0 {
                    strict.push(r as u32, c as u32, a[r * n + c]);
                }
            }
        }
        let t = UnitTriangular::from_strict(triangle, strict)
            .map_err(|e| CoreError::Execution(e.to_string()))?;
        let solver = SptrsvPim {
            device: self.device.clone(),
            precision: self.precision,
            level_chunk: self.device.hbm.row_bytes() / self.precision.bytes(),
        };
        let res = solver.run(&t, b)?;
        Ok((res.x, res.run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::gen;

    fn runner() -> Gemv {
        Gemv::new(PimDevice::tiny(2), Precision::Fp64)
    }

    fn dense_gemv(a: &[f64], nrows: usize, ncols: usize, x: &[f64]) -> Vec<f64> {
        (0..nrows)
            .map(|r| (0..ncols).map(|c| a[r * ncols + c] * x[c]).sum())
            .collect()
    }

    #[test]
    fn dgemv_matches_reference() {
        let (nr, nc) = (24, 20);
        let a = gen::dense_vector(nr * nc, 1);
        let x = gen::dense_vector(nc, 2);
        let res = runner().dgemv(&a, nr, nc, &x).unwrap();
        let want = dense_gemv(&a, nr, nc, &x);
        for (g, w) in res.y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        assert_eq!(res.panels, 1);
        assert!(res.run.total_s() > 0.0);
    }

    #[test]
    fn dgemv_nonsquare_and_unaligned() {
        let (nr, nc) = (13, 7); // deliberately awkward
        let a = gen::dense_vector(nr * nc, 3);
        let x = gen::dense_vector(nc, 4);
        let res = runner().dgemv(&a, nr, nc, &x).unwrap();
        let want = dense_gemv(&a, nr, nc, &x);
        for (g, w) in res.y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn dtrsv_solves_dense_lower() {
        let n = 20;
        let mut a = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..r {
                a[r * n + c] = 0.3 / (1.0 + (r - c) as f64);
            }
            a[r * n + r] = 1.0;
        }
        let x_want = gen::dense_vector(n, 5);
        // b = A x
        let b: Vec<f64> = (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c] * x_want[c]).sum::<f64>())
            .collect();
        let (x, run) = runner().dtrsv(&a, n, Triangle::Lower, &b).unwrap();
        for (g, w) in x.iter().zip(&x_want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        assert!(run.total_s() > 0.0);
    }
}

#[cfg(test)]
mod panel_tests {
    use super::*;
    use psim_sparse::gen;

    #[test]
    fn wide_matrix_splits_into_column_panels() {
        // ncols > 1023 chunks * 4 lanes forces >1 panel at FP64.
        let (nr, nc) = (6usize, 4100usize);
        let a = gen::dense_vector(nr * nc, 21);
        let x = gen::dense_vector(nc, 22);
        let g = Gemv::new(PimDevice::tiny(1), Precision::Fp64);
        let res = g.dgemv(&a, nr, nc, &x).unwrap();
        assert!(
            res.panels > 1,
            "expected multiple panels, got {}",
            res.panels
        );
        let want: Vec<f64> = (0..nr)
            .map(|r| (0..nc).map(|c| a[r * nc + c] * x[c]).sum())
            .collect();
        for (got, want) in res.y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-8 * want.abs().max(1.0));
        }
    }

    #[test]
    fn int8_gemv_quantizes_and_runs_wider_lanes() {
        let (nr, nc) = (8usize, 64usize);
        let a: Vec<f64> = (0..nr * nc)
            .map(|i| f64::from((i % 5) as i32 - 2))
            .collect();
        let x: Vec<f64> = (0..nc).map(|i| f64::from((i % 3) as i32)).collect();
        let g = Gemv::new(PimDevice::tiny(1), Precision::Int8);
        let res = g.dgemv(&a, nr, nc, &x).unwrap();
        // Exact in INT8 as long as each row dot stays within i8 range?
        // Row sums can exceed 127, so compare with the quantized pipeline:
        // products are small ints, accumulation happens in the SRF at FP64
        // internally and quantizes on store.
        let want: Vec<f64> = (0..nr)
            .map(|r| {
                let s: f64 = (0..nc).map(|c| a[r * nc + c] * x[c]).sum();
                Precision::Int8.quantize(s)
            })
            .collect();
        assert_eq!(res.y, want);
    }

    #[test]
    fn dtrsv_solves_dense_upper() {
        let n = 12;
        let mut a = vec![0.0; n * n];
        for r in 0..n {
            a[r * n + r] = 1.0;
            for c in (r + 1)..n {
                a[r * n + c] = 0.2 / (1.0 + (c - r) as f64);
            }
        }
        let x_want = gen::dense_vector(n, 31);
        let b: Vec<f64> = (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c] * x_want[c]).sum())
            .collect();
        let g = Gemv::new(PimDevice::tiny(1), Precision::Fp64);
        let (x, _run) = g.dtrsv(&a, n, Triangle::Upper, &b).unwrap();
        for (got, want) in x.iter().zip(&x_want) {
            assert!((got - want).abs() < 1e-9);
        }
    }
}
