//! PIM assembly programs for every Table III kernel.
//!
//! Each builder returns assembly text parameterized by precision (and loop
//! counts where the kernel is statically bounded); the kernels assemble it
//! through [`psyncpim_core::isa::assemble`]. The sparse kernels follow the
//! paper's Algorithm 2 shape: an unbounded loop closed by `CEXIT`.

use psim_sparse::Precision;

/// SpMV / SpTRSV-level inner loop (paper Algorithm 2): stream (row, col,
/// val) triples, gather the dense operand at `col`, combine with `mul_op`,
/// and scatter-accumulate into the output row with `acc_op` (MUL/ADD for
/// arithmetic SpMV, MUL/RSUB for the SpTRSV column sweep, ADD/MIN for the
/// min-plus semiring of SSSP, ...).
///
/// Memory slots: 0–2 load the matrix stream, 3 gathers from the dense
/// vector region, 5 read-modify-writes the output region.
#[must_use]
pub fn sparse_stream_semiring(p: Precision, mul_op: &str, acc_op: &str) -> String {
    format!(
        "\
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
INDMOV DRF2, SPVQ0, {p}
SPVDV  SPVQ1, SPVQ0, DRF2, {mul_op}, INTER, {p}
SPVDV  BANK, SPVQ1, BANK, {acc_op}, UNION, {p}
CEXIT  SPVQ0
JUMP   0, 0, 0
"
    )
}

/// [`sparse_stream_semiring`] with the conventional multiply.
#[must_use]
pub fn sparse_stream(p: Precision, acc_op: &str) -> String {
    sparse_stream_semiring(p, "MUL", acc_op)
}

/// Batched variant of [`sparse_stream_semiring`]: two chunks per loop
/// iteration. The triples live *interleaved* in one region
/// (`[rowsA|colsA|valsA|rowsB|colsB|valsB]` blocks — the paper's "32 B
/// consecutive arrays" layout), so slots 0-5 stream one open DRAM row;
/// the two gathers (slots 6, 8) share the vector row and the two
/// accumulates (slots 10, 11) share the output row: three row activations
/// per eight elements instead of five per four.
#[must_use]
pub fn sparse_stream_batched(p: Precision, mul_op: &str, acc_op: &str) -> String {
    format!(
        "\
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
INDMOV DRF2, SPVQ0, {p}
SPVDV  SPVQ1, SPVQ0, DRF2, {mul_op}, INTER, {p}
INDMOV DRF2, SPVQ0, {p}
SPVDV  SPVQ1, SPVQ0, DRF2, {mul_op}, INTER, {p}
SPVDV  BANK, SPVQ1, BANK, {acc_op}, UNION, {p}
SPVDV  BANK, SPVQ1, BANK, {acc_op}, UNION, {p}
CEXIT  SPVQ0
JUMP   0, 0, 0
"
    )
}

/// SpMM (multi-vector SpMV) stream: the same batched two-chunk schedule as
/// [`sparse_stream_batched`], consumed over the *block-diagonal expansion*
/// of the operands. The host replicates each bank's submatrix entries once
/// per fused vector `v`, shifting indices by `(v·max_out, v·max_in)` into
/// stacked input/output regions, so one kernel launch — one mode-switch
/// cycle, one CRF programming, one completion poll — traverses the matrix
/// for every fused vector. The PU-side program text is identical to the
/// batched stream (the expansion lives entirely in the data layout), so a
/// width-1 SpMM is bit-identical to SpMV by construction.
#[must_use]
pub fn spmm_stream(p: Precision, mul_op: &str, acc_op: &str) -> String {
    sparse_stream_batched(p, mul_op, acc_op)
}

/// A bounded loop back-edge: `JUMP` executes its body `iters` times; a
/// single-iteration loop degenerates to `NOP` (a zero-count JUMP would be
/// the *unconditional* loop of Algorithm 2). Keeping the line in place
/// keeps memory-slot numbering stable.
fn loop_line(target: usize, order: usize, iters: usize) -> String {
    if iters > 1 {
        format!("JUMP {target}, {order}, {}", iters - 1)
    } else {
        "NOP".to_string()
    }
}

/// DCOPY: `y <- x`, `chunks` bursts per bank. Slots: 0 load, 1 store.
#[must_use]
pub fn dcopy(p: Precision, chunks: u16) -> String {
    format!(
        "\
DMOV DRF0, BANK, {p}
DMOV BANK, DRF0, {p}
{loop_line}
EXIT
",
        loop_line = loop_line(0, 1, chunks as usize)
    )
}

/// DSWAP: `x <-> y` via two DRFs. Slots: 0 load x, 1 load y, 2 store x
/// into y's region, 3 store y into x's region.
#[must_use]
pub fn dswap(p: Precision, chunks: u16) -> String {
    format!(
        "\
DMOV DRF0, BANK, {p}
DMOV DRF1, BANK, {p}
DMOV BANK, DRF0, {p}
DMOV BANK, DRF1, {p}
{loop_line}
EXIT
",
        loop_line = loop_line(0, 1, chunks as usize)
    )
}

/// DSCAL: `x <- a x` with α pre-seeded in the SRF. Slots: 0 load, 2 store.
#[must_use]
pub fn dscal(p: Precision, chunks: u16) -> String {
    format!(
        "\
DMOV DRF0, BANK, {p}
SDV  DRF0, DRF0, MUL, {p}
DMOV BANK, DRF0, {p}
{loop_line}
EXIT
",
        loop_line = loop_line(0, 1, chunks as usize)
    )
}

/// DAXPY: `y <- a x + y` with α in the SRF. Slots: 0 load x, 1 load y,
/// 4 store y.
#[must_use]
pub fn daxpy(p: Precision, chunks: u16) -> String {
    format!(
        "\
DMOV DRF0, BANK, {p}
DMOV DRF1, BANK, {p}
SDV  DRF0, DRF0, MUL, {p}
DVDV DRF1, DRF0, DRF1, ADD, {p}
DMOV BANK, DRF1, {p}
{loop_line}
EXIT
",
        loop_line = loop_line(0, 1, chunks as usize)
    )
}

/// DDOT / DNRM2 inner product: partial sum accumulates in the SRF;
/// the host collects per-bank partials. Slots: 0 load x, 1 load y.
#[must_use]
pub fn ddot(p: Precision, chunks: u16) -> String {
    format!(
        "\
DMOV DRF0, BANK, {p}
DMOV DRF1, BANK, {p}
DVDV DRF2, DRF0, DRF1, MUL, {p}
REDUCE DRF2, ADD, {p}
{loop_line}
EXIT
",
        loop_line = loop_line(0, 1, chunks as usize)
    )
}

/// Element-wise dense binary op `z <- x (op) y` (the DVDV workhorse used
/// by graph-app masks and solver updates). Slots: 0 load x, 1 load y,
/// 3 store z.
#[must_use]
pub fn dvdv(p: Precision, op: &str, chunks: u16) -> String {
    format!(
        "\
DMOV DRF0, BANK, {p}
DMOV DRF1, BANK, {p}
DVDV DRF1, DRF0, DRF1, {op}, {p}
DMOV BANK, DRF1, {p}
{loop_line}
EXIT
",
        loop_line = loop_line(0, 1, chunks as usize)
    )
}

/// GATHER: sparse vector from dense (`x_sp <- y_d`). Slot 0 reads the
/// dense region; slot 1 force-writes the queue as (row, col, val) triples.
#[must_use]
pub fn gather(p: Precision, chunks: u16) -> String {
    format!(
        "\
GTHSCT SPVQ0, BANK, ZERO, {p}
SPFW   SPVQ0, {p}
{loop_line}
EXIT
",
        loop_line = loop_line(0, 1, chunks as usize)
    )
}

/// SCATTER: dense vector from sparse (`y_d <- x_sp`). Slots 0–2 stream the
/// sparse triples, slot 4 scatters into the dense region.
#[must_use]
pub fn scatter(p: Precision) -> String {
    format!(
        "\
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
GTHSCT BANK, SPVQ0, ZERO, {p}
CEXIT  SPVQ0
JUMP   0, 0, 0
"
    )
}

/// SpAXPY: `y_d <- a x_sp + y_d` — stream sparse triples, scale by α (SRF),
/// scatter-accumulate. Slots 0–2 stream, 4 accumulates.
#[must_use]
pub fn spaxpy(p: Precision) -> String {
    format!(
        "\
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
SSPV   SPVQ1, SPVQ0, MUL, {p}
SPVDV  BANK, SPVQ1, BANK, ADD, UNION, {p}
CEXIT  SPVQ0
JUMP   0, 0, 0
"
    )
}

/// SpDOT: `s <- x_sp^T y_d` — stream triples, gather y at the indices,
/// multiply, and force-write the product triples for the host reduction
/// (SpFW drains all three sub-queues, keeping them in lockstep).
#[must_use]
pub fn spdot(p: Precision) -> String {
    format!(
        "\
SPMOV  SPVQ0, BANK, ROW, {p}
SPMOV  SPVQ0, BANK, COL, {p}
SPMOV  SPVQ0, BANK, VAL, {p}
INDMOV DRF2, SPVQ0, {p}
SPVDV  SPVQ1, SPVQ0, DRF2, MUL, INTER, {p}
SPFW   SPVQ1, {p}
CEXIT  SPVQ0
JUMP   0, 0, 0
"
    )
}

/// DGEMV row block: for each of `rows` matrix rows (per bank), stream
/// `chunks` bursts of the row against the replicated x, accumulating the
/// dot product in the SRF, then append it to the output region and clear
/// the accumulator. Slots: 0 load A chunk, 1 load x chunk, 5 store the
/// row result.
#[must_use]
pub fn dgemv(p: Precision, rows: u16, chunks: u16) -> String {
    format!(
        "\
DMOV DRF0, BANK, {p}
DMOV DRF1, BANK, {p}
DVDV DRF2, DRF0, DRF1, MUL, {p}
REDUCE DRF2, ADD, {p}
{inner_loop}
DMOV BANK, SRF, {p}
DVDV DRF2, DRF2, DRF2, SUB, {p}
DMOV SRF, DRF2, {p}
{outer_loop}
EXIT
",
        inner_loop = loop_line(0, 1, chunks as usize),
        outer_loop = loop_line(0, 2, rows as usize),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psyncpim_core::isa::assemble;

    #[test]
    fn all_programs_assemble() {
        for p in [Precision::Fp64, Precision::Fp32, Precision::Int8] {
            assert!(assemble(&sparse_stream(p, "ADD")).is_ok());
            assert!(assemble(&sparse_stream(p, "RSUB")).is_ok());
            assert!(assemble(&dcopy(p, 4)).is_ok());
            assert!(assemble(&dswap(p, 4)).is_ok());
            assert!(assemble(&dscal(p, 4)).is_ok());
            assert!(assemble(&daxpy(p, 4)).is_ok());
            assert!(assemble(&ddot(p, 4)).is_ok());
            assert!(assemble(&dvdv(p, "MIN", 4)).is_ok());
            assert!(assemble(&gather(p, 4)).is_ok());
            assert!(assemble(&scatter(p)).is_ok());
            assert!(assemble(&spaxpy(p)).is_ok());
            assert!(assemble(&spdot(p)).is_ok());
            assert!(assemble(&dgemv(p, 4, 4)).is_ok());
        }
    }

    #[test]
    fn batched_stream_schedule_shape() {
        let prog = assemble(&sparse_stream_batched(Precision::Fp64, "MUL", "ADD")).unwrap();
        assert!(prog.is_conditional_loop());
        assert_eq!(
            prog.command_schedule().unwrap(),
            vec![0, 1, 2, 3, 4, 5, 6, 8, 10, 11]
        );
    }

    #[test]
    fn spmm_stream_matches_batched_schedule() {
        // The SpMM program must stay textually identical to the batched
        // stream: width-1 bit-identity of the SpMM kernel depends on it.
        for p in [Precision::Fp64, Precision::Fp32, Precision::Int8] {
            assert_eq!(
                spmm_stream(p, "MUL", "ADD"),
                sparse_stream_batched(p, "MUL", "ADD")
            );
        }
        let prog = assemble(&spmm_stream(Precision::Fp64, "MUL", "MIN")).unwrap();
        assert!(prog.is_conditional_loop());
        assert_eq!(
            prog.command_schedule().unwrap(),
            vec![0, 1, 2, 3, 4, 5, 6, 8, 10, 11]
        );
    }

    #[test]
    fn sparse_stream_schedule_shape() {
        let prog = assemble(&sparse_stream(Precision::Fp64, "ADD")).unwrap();
        assert!(prog.is_conditional_loop());
        assert_eq!(prog.command_schedule().unwrap(), vec![0, 1, 2, 3, 5]);
    }

    #[test]
    fn dense_programs_fit_control_register() {
        let prog = assemble(&dgemv(Precision::Fp64, 100, 100)).unwrap();
        assert!(prog.len() <= 32);
    }
}
