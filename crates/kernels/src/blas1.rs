//! Dense and sparse BLAS Level-1 kernels on pSyncPIM (Table III).
//!
//! Vectors are striped contiguously across banks (the application runtime
//! keeps them resident in PIM memory, so Level-1 kernels run at internal
//! bandwidth; only scalar results cross the external bus). Each kernel
//! assembles its program from [`crate::programs`], lays out stripes,
//! executes, and reads results back from bank memory.

use crate::device::{mode_cycle, KernelRun, PimDevice};
use crate::programs;
use psim_sparse::dense::SparseVec;
use psim_sparse::Precision;
use psyncpim_core::isa::assemble;
use psyncpim_core::memory::SENTINEL;
use psyncpim_core::{CoreError, Engine, RegionId};

/// BLAS Level-1 kernel runner.
#[derive(Debug, Clone)]
pub struct Blas1Pim {
    /// Target device.
    pub device: PimDevice,
    /// Element precision.
    pub precision: Precision,
}

/// A vector result plus its run report.
#[derive(Debug, Clone)]
pub struct VecRun {
    /// The resulting vector.
    pub v: Vec<f64>,
    /// Timing/energy/commands.
    pub run: KernelRun,
}

/// A scalar result plus its run report.
#[derive(Debug, Clone)]
pub struct ScalarRun {
    /// The resulting scalar.
    pub s: f64,
    /// Timing/energy/commands.
    pub run: KernelRun,
}

/// Stripe geometry: `n` elements over `nbanks` banks in `lanes`-aligned
/// contiguous stripes.
fn stripe_len(n: usize, nbanks: usize, lanes: usize) -> usize {
    n.div_ceil(nbanks).div_ceil(lanes).max(1) * lanes
}

impl Blas1Pim {
    /// Runner on a device at a precision.
    #[must_use]
    pub fn new(device: PimDevice, precision: Precision) -> Self {
        Blas1Pim { device, precision }
    }

    fn lanes(&self) -> usize {
        self.precision.lanes()
    }

    fn nbanks(&self) -> usize {
        self.device.hbm.total_banks()
    }

    /// Lay a dense vector out as per-bank stripe regions (one region per
    /// call, same id on every bank). Returns the region id and stripe
    /// length.
    fn alloc_stripes(&self, engine: &mut Engine, name: &str, v: &[f64]) -> (RegionId, usize) {
        let nbanks = self.nbanks();
        let sl = stripe_len(v.len(), nbanks, self.lanes());
        let mut id = RegionId(0);
        for b in 0..nbanks {
            let data: Vec<f64> = (0..sl)
                .map(|i| {
                    v.get(b * sl + i)
                        .map_or(0.0, |&x| self.precision.quantize(x))
                })
                .collect();
            id = engine.mem_mut(b).alloc(name, self.precision.bytes(), data);
        }
        (id, sl)
    }

    /// Read striped data back into a host vector of length `n`.
    fn read_stripes(&self, engine: &Engine, id: RegionId, n: usize, sl: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for b in 0..self.nbanks() {
            let data = engine.mem(b).region(id).data();
            for (i, &d) in data.iter().enumerate().take(sl) {
                let g = b * sl + i;
                if g < n {
                    out[g] = d;
                }
            }
        }
        out
    }

    fn execute(
        &self,
        engine: &mut Engine,
        asm: &str,
        bindings: Vec<Option<RegionId>>,
        srf: Option<f64>,
    ) -> Result<KernelRun, CoreError> {
        let program = assemble(asm)?;
        self.device.verify_program(&program)?;
        let mut host = self.device.make_host();
        mode_cycle(&mut host, program.len());
        engine.load_kernel(program, bindings)?;
        if let Some(v) = srf {
            engine.set_srf_all(v);
        }
        let report = engine.run()?;
        let mut run = KernelRun::default();
        run.kernel_s += report.seconds;
        run.dram_cycles += report.dram_cycles;
        run.absorb_wall(&report);
        run.absorb_engine(&report);
        run.phases = 1;
        run.absorb_host(&host);
        Ok(run)
    }

    /// DCOPY: `y <- x`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn dcopy(&self, x: &[f64]) -> Result<VecRun, CoreError> {
        let mut engine = self.device.make_engine();
        let (rx, sl) = self.alloc_stripes(&mut engine, "x", x);
        let (ry, _) = self.alloc_stripes(&mut engine, "y", &vec![0.0; x.len()]);
        let chunks = (sl / self.lanes()) as u16;
        let run = self.execute(
            &mut engine,
            &programs::dcopy(self.precision, chunks),
            vec![Some(rx), Some(ry), None, None],
            None,
        )?;
        Ok(VecRun {
            v: self.read_stripes(&engine, ry, x.len(), sl),
            run,
        })
    }

    /// DSWAP: `x <-> y`; returns `(new_x, new_y)`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dswap(&self, x: &[f64], y: &[f64]) -> Result<(VecRun, Vec<f64>), CoreError> {
        assert_eq!(x.len(), y.len(), "dswap length mismatch");
        let mut engine = self.device.make_engine();
        let (rx, sl) = self.alloc_stripes(&mut engine, "x", x);
        let (ry, _) = self.alloc_stripes(&mut engine, "y", y);
        let chunks = (sl / self.lanes()) as u16;
        // Slots: 0 load x, 1 load y, 2 store x->y region, 3 store y->x.
        let run = self.execute(
            &mut engine,
            &programs::dswap(self.precision, chunks),
            vec![Some(rx), Some(ry), Some(ry), Some(rx), None, None],
            None,
        )?;
        let new_x = self.read_stripes(&engine, rx, x.len(), sl);
        let new_y = self.read_stripes(&engine, ry, y.len(), sl);
        Ok((VecRun { v: new_x, run }, new_y))
    }

    /// DSCAL: `x <- a x`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn dscal(&self, a: f64, x: &[f64]) -> Result<VecRun, CoreError> {
        let mut engine = self.device.make_engine();
        let (rx, sl) = self.alloc_stripes(&mut engine, "x", x);
        let chunks = (sl / self.lanes()) as u16;
        let run = self.execute(
            &mut engine,
            &programs::dscal(self.precision, chunks),
            vec![Some(rx), None, Some(rx), None],
            Some(a),
        )?;
        Ok(VecRun {
            v: self.read_stripes(&engine, rx, x.len(), sl),
            run,
        })
    }

    /// DAXPY: `y <- a x + y`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn daxpy(&self, a: f64, x: &[f64], y: &[f64]) -> Result<VecRun, CoreError> {
        assert_eq!(x.len(), y.len(), "daxpy length mismatch");
        let mut engine = self.device.make_engine();
        let (rx, sl) = self.alloc_stripes(&mut engine, "x", x);
        let (ry, _) = self.alloc_stripes(&mut engine, "y", y);
        let chunks = (sl / self.lanes()) as u16;
        let run = self.execute(
            &mut engine,
            &programs::daxpy(self.precision, chunks),
            vec![Some(rx), Some(ry), None, None, Some(ry), None],
            Some(a),
        )?;
        Ok(VecRun {
            v: self.read_stripes(&engine, ry, y.len(), sl),
            run,
        })
    }

    /// Element-wise `z <- x (op) y` (DVDV over any Binary-field op —
    /// MIN/MAX drive the graph-application masks).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dvdv(
        &self,
        x: &[f64],
        y: &[f64],
        op: psyncpim_core::isa::BinaryOp,
    ) -> Result<VecRun, CoreError> {
        assert_eq!(x.len(), y.len(), "dvdv length mismatch");
        let mut engine = self.device.make_engine();
        let (rx, sl) = self.alloc_stripes(&mut engine, "x", x);
        let (ry, _) = self.alloc_stripes(&mut engine, "y", y);
        let (rz, _) = self.alloc_stripes(&mut engine, "z", &vec![0.0; x.len()]);
        let chunks = (sl / self.lanes()) as u16;
        let run = self.execute(
            &mut engine,
            &programs::dvdv(self.precision, &op.to_string(), chunks),
            vec![Some(rx), Some(ry), None, Some(rz), None, None],
            None,
        )?;
        Ok(VecRun {
            v: self.read_stripes(&engine, rz, x.len(), sl),
            run,
        })
    }

    /// DDOT: `s <- x^T y`. Per-bank partials accumulate in the SRFs; the
    /// host collects and reduces them (one external read per bank).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn ddot(&self, x: &[f64], y: &[f64]) -> Result<ScalarRun, CoreError> {
        assert_eq!(x.len(), y.len(), "ddot length mismatch");
        let mut engine = self.device.make_engine();
        let (rx, sl) = self.alloc_stripes(&mut engine, "x", x);
        let (ry, _) = self.alloc_stripes(&mut engine, "y", y);
        let chunks = (sl / self.lanes()) as u16;
        let mut run = self.execute(
            &mut engine,
            &programs::ddot(self.precision, chunks),
            vec![Some(rx), Some(ry), None, None, None, None],
            Some(0.0),
        )?;
        let mut host = self.device.make_host();
        host.collect(self.nbanks() * self.precision.bytes());
        run.absorb_host(&host);
        let s = (0..self.nbanks()).map(|b| engine.pu(b).srf()).sum();
        Ok(ScalarRun { s, run })
    }

    /// DNRM2: `s <- ||x||₂` via DDOT.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn dnrm2(&self, x: &[f64]) -> Result<ScalarRun, CoreError> {
        let mut r = self.ddot(x, x)?;
        r.s = r.s.sqrt();
        Ok(r)
    }

    /// GATHER: `x_sp <- y_d` (collect the non-zeros of a dense vector).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn gather(&self, y: &[f64]) -> Result<(SparseVec, KernelRun), CoreError> {
        let mut engine = self.device.make_engine();
        let (ry, sl) = self.alloc_stripes(&mut engine, "y", y);
        // Output: (row, col, val) triples via SpFW; worst case every
        // element is non-zero.
        let nbanks = self.nbanks();
        let mut rout = RegionId(0);
        for b in 0..nbanks {
            rout = engine
                .mem_mut(b)
                .alloc_zeroed("triples", self.precision.bytes(), 3 * sl);
        }
        let chunks = (sl / self.lanes()) as u16;
        let run = self.execute(
            &mut engine,
            &programs::gather(self.precision, chunks),
            vec![Some(ry), Some(rout), None, None],
            None,
        )?;
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for b in 0..nbanks {
            let data = engine.mem(b).region(rout).data();
            for t in data.chunks(3) {
                let (c, v) = (t[1], t[2]);
                if v != 0.0 {
                    let global = b * sl + c as usize;
                    if global < y.len() {
                        pairs.push((global as u32, v));
                    }
                }
            }
        }
        Ok((SparseVec::from_pairs(y.len(), pairs), run))
    }

    /// SCATTER: `y_d <- x_sp` over an existing dense vector.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn scatter(&self, x_sp: &SparseVec, y: &[f64]) -> Result<VecRun, CoreError> {
        assert_eq!(x_sp.dim(), y.len(), "scatter length mismatch");
        let mut engine = self.device.make_engine();
        let (ry, sl) = self.alloc_stripes(&mut engine, "y", y);
        let (r0, r1, r2) = self.alloc_triple_streams(&mut engine, x_sp, sl);
        let run = self.execute(
            &mut engine,
            &programs::scatter(self.precision),
            vec![Some(r0), Some(r1), Some(r2), Some(ry), None, None],
            None,
        )?;
        Ok(VecRun {
            v: self.read_stripes(&engine, ry, y.len(), sl),
            run,
        })
    }

    /// SpAXPY: `y <- a x_sp + y`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn spaxpy(&self, a: f64, x_sp: &SparseVec, y: &[f64]) -> Result<VecRun, CoreError> {
        assert_eq!(x_sp.dim(), y.len(), "spaxpy length mismatch");
        let mut engine = self.device.make_engine();
        let (ry, sl) = self.alloc_stripes(&mut engine, "y", y);
        let (r0, r1, r2) = self.alloc_triple_streams(&mut engine, x_sp, sl);
        let run = self.execute(
            &mut engine,
            &programs::spaxpy(self.precision),
            vec![Some(r0), Some(r1), Some(r2), None, Some(ry), None, None],
            Some(a),
        )?;
        Ok(VecRun {
            v: self.read_stripes(&engine, ry, y.len(), sl),
            run,
        })
    }

    /// SpDOT: `s <- x_sp^T y_d`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn spdot(&self, x_sp: &SparseVec, y: &[f64]) -> Result<ScalarRun, CoreError> {
        assert_eq!(x_sp.dim(), y.len(), "spdot length mismatch");
        let mut engine = self.device.make_engine();
        let (ry, sl) = self.alloc_stripes(&mut engine, "y", y);
        let (r0, r1, r2) = self.alloc_triple_streams(&mut engine, x_sp, sl);
        // Products land in a per-bank staging region; the host reduces.
        let nbanks = self.nbanks();
        let max_nnz = per_bank_nnz_max(x_sp, sl, nbanks);
        let mut rprod = RegionId(0);
        for b in 0..nbanks {
            // SpFW writes (row, col, value) triples: three slots per product.
            rprod = engine.mem_mut(b).alloc_zeroed(
                "products",
                self.precision.bytes(),
                3 * max_nnz.max(1),
            );
        }
        let mut run = self.execute(
            &mut engine,
            &programs::spdot(self.precision),
            vec![
                Some(r0),
                Some(r1),
                Some(r2),
                Some(ry),
                None,
                Some(rprod),
                None,
                None,
            ],
            None,
        )?;
        let mut host = self.device.make_host();
        host.collect(self.nbanks() * self.precision.bytes());
        run.absorb_host(&host);
        let mut s = 0.0;
        for b in 0..nbanks {
            // Values sit at every third slot of the SpFW triples.
            s += engine
                .mem(b)
                .region(rprod)
                .data()
                .chunks(3)
                .map(|t| t.get(2).copied().unwrap_or(0.0))
                .sum::<f64>();
        }
        Ok(ScalarRun { s, run })
    }

    /// Allocate sentinel-terminated (row, col, val) streams for a sparse
    /// vector, striped by element index; `col` carries the *stripe-local*
    /// position (the gather/scatter address within the bank's stripe).
    fn alloc_triple_streams(
        &self,
        engine: &mut Engine,
        x_sp: &SparseVec,
        sl: usize,
    ) -> (RegionId, RegionId, RegionId) {
        let nbanks = self.nbanks();
        let lanes = self.lanes();
        let mut per_bank: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nbanks];
        for &(i, v) in x_sp.iter() {
            let b = (i as usize / sl).min(nbanks - 1);
            per_bank[b].push((i % sl as u32, v));
        }
        let max_chunks = per_bank
            .iter()
            .map(|e| e.len().div_ceil(lanes))
            .max()
            .unwrap_or(0);
        let len = (max_chunks + 1) * lanes;
        let mut ids = (RegionId(0), RegionId(0), RegionId(0));
        for (b, entries) in per_bank.iter().enumerate() {
            let mut rows = vec![SENTINEL; len];
            let mut cols = vec![SENTINEL; len];
            let mut vals = vec![0.0; len];
            for (i, &(local, v)) in entries.iter().enumerate() {
                rows[i] = f64::from(local);
                cols[i] = f64::from(local);
                vals[i] = self.precision.quantize(v);
            }
            let mem = engine.mem_mut(b);
            let r0 = mem.alloc("sp-rows", self.precision.bytes(), rows);
            let r1 = mem.alloc("sp-cols", self.precision.bytes(), cols);
            let r2 = mem.alloc("sp-vals", self.precision.bytes(), vals);
            ids = (r0, r1, r2);
        }
        ids
    }
}

fn per_bank_nnz_max(x_sp: &SparseVec, sl: usize, nbanks: usize) -> usize {
    let mut counts = vec![0usize; nbanks];
    for &(i, _) in x_sp.iter() {
        counts[(i as usize / sl).min(nbanks - 1)] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::dense;
    use psim_sparse::gen;

    fn runner() -> Blas1Pim {
        Blas1Pim::new(PimDevice::tiny(2), Precision::Fp64)
    }

    #[test]
    fn dcopy_matches() {
        let x = gen::dense_vector(100, 1);
        let r = runner().dcopy(&x).unwrap();
        assert_eq!(r.v, x);
        assert!(r.run.total_s() > 0.0);
    }

    #[test]
    fn dswap_exchanges() {
        let x = gen::dense_vector(50, 2);
        let y = gen::dense_vector(50, 3);
        let (rx, new_y) = runner().dswap(&x, &y).unwrap();
        assert_eq!(rx.v, y);
        assert_eq!(new_y, x);
    }

    #[test]
    fn dscal_scales() {
        let x = gen::dense_vector(70, 4);
        let r = runner().dscal(-2.5, &x).unwrap();
        for (g, w) in r.v.iter().zip(&x) {
            assert!((g - w * -2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn daxpy_matches_reference() {
        let x = gen::dense_vector(90, 5);
        let y = gen::dense_vector(90, 6);
        let r = runner().daxpy(3.0, &x, &y).unwrap();
        let mut want = y.clone();
        dense::axpy(3.0, &x, &mut want);
        for (g, w) in r.v.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn ddot_and_dnrm2() {
        let x = gen::dense_vector(120, 7);
        let y = gen::dense_vector(120, 8);
        let d = runner().ddot(&x, &y).unwrap();
        assert!((d.s - dense::dot(&x, &y)).abs() < 1e-9);
        let n = runner().dnrm2(&x).unwrap();
        assert!((n.s - dense::nrm2(&x)).abs() < 1e-9);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut y = vec![0.0; 64];
        y[3] = 1.5;
        y[17] = -2.0;
        y[40] = 7.0;
        y[63] = 0.25;
        let (sp, _run) = runner().gather(&y).unwrap();
        assert_eq!(sp.nnz(), 4);
        assert_eq!(sp.to_dense(), y);
        let zeros = vec![0.0; 64];
        let r = runner().scatter(&sp, &zeros).unwrap();
        assert_eq!(r.v, y);
    }

    #[test]
    fn spaxpy_matches_reference() {
        let y = gen::dense_vector(80, 9);
        let sp = SparseVec::from_pairs(80, vec![(2, 1.0), (40, -3.0), (79, 0.5)]);
        let r = runner().spaxpy(2.0, &sp, &y).unwrap();
        let mut want = y.clone();
        dense::spaxpy(2.0, &sp, &mut want);
        for (g, w) in r.v.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn spdot_matches_reference() {
        let y = gen::dense_vector(100, 10);
        let sp = SparseVec::from_pairs(100, vec![(0, 2.0), (55, 1.5), (99, -1.0)]);
        let r = runner().spdot(&sp, &y).unwrap();
        assert!((r.s - dense::spdot(&sp, &y)).abs() < 1e-12);
    }

    #[test]
    fn int8_dense_throughput_uses_wider_lanes() {
        // INT8 moves 32 lanes per burst: same vector, fewer rounds.
        let x: Vec<f64> = (0..256).map(|i| f64::from(i % 100)).collect();
        let f = Blas1Pim::new(PimDevice::tiny(2), Precision::Fp64)
            .dcopy(&x)
            .unwrap();
        let i = Blas1Pim::new(PimDevice::tiny(2), Precision::Int8)
            .dcopy(&x)
            .unwrap();
        assert!(i.run.rounds <= f.run.rounds);
        assert!(i.run.kernel_s < f.run.kernel_s);
        assert_eq!(i.v, x); // values < 128 survive quantization
    }
}
