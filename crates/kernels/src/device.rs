//! Simulated pSyncPIM device configurations and run reporting.

use psim_dram::{HbmConfig, Mode};
use psim_sparse::Precision;
use psyncpim_core::{
    CycleBreakdown, Engine, EngineConfig, EngineTier, ExecMode, HostController, MetricsRegistry,
    RunReport,
};
use serde::{Deserialize, Serialize};

/// Default stall-event buffer capacity when tracing is on.
pub const DEFAULT_TRACE_EVENTS: usize = 4096;

/// A pSyncPIM device: one or more cubes plus the host interface.
#[derive(Debug, Clone)]
pub struct PimDevice {
    /// Memory configuration of one cube.
    pub hbm: HbmConfig,
    /// All-bank (pSyncPIM) or per-bank (PB baseline) control.
    pub mode: ExecMode,
    /// Number of cubes ganged together (the paper's 3× configuration uses
    /// 3 cubes for 768 GB/s of external bandwidth to match an RTX 3080).
    pub cubes: usize,
    /// Run every engine phase with the independent protocol checker
    /// attached; violations surface in [`KernelRun::violations`].
    pub validate: bool,
    /// Collect psim-trace cycle attribution: per-PU stall breakdowns
    /// surface in [`KernelRun::metrics`] and the wall-clock breakdown in
    /// [`KernelRun::attr`].
    pub trace: bool,
    /// Stall-event buffer capacity per engine phase when tracing
    /// (overflow is counted, never silently truncated).
    pub trace_events: usize,
    /// Engine tier: the cycle-stepping reference loop or the bit-identical
    /// event-driven fast path. Constructors honor `PSIM_ENGINE=event`.
    pub tier: EngineTier,
}

impl PimDevice {
    /// The paper's baseline 1× pSyncPIM (256 banks, 256 GB/s external).
    #[must_use]
    pub fn psync_1x() -> Self {
        PimDevice {
            hbm: HbmConfig::default(),
            mode: ExecMode::AllBank,
            cubes: 1,
            validate: false,
            trace: false,
            trace_events: DEFAULT_TRACE_EVENTS,
            tier: EngineTier::from_env(),
        }
    }

    /// The 3× configuration (768 GB/s aggregate external bandwidth).
    #[must_use]
    pub fn psync_3x() -> Self {
        PimDevice {
            hbm: HbmConfig::default(),
            mode: ExecMode::AllBank,
            cubes: 3,
            validate: false,
            trace: false,
            trace_events: DEFAULT_TRACE_EVENTS,
            tier: EngineTier::from_env(),
        }
    }

    /// The per-bank (PB) control baseline of §III-B.
    #[must_use]
    pub fn per_bank() -> Self {
        PimDevice {
            hbm: HbmConfig::default(),
            mode: ExecMode::PerBank,
            cubes: 1,
            validate: false,
            trace: false,
            trace_events: DEFAULT_TRACE_EVENTS,
            tier: EngineTier::from_env(),
        }
    }

    /// A shrunken device for fast tests: `channels` pseudo-channels of
    /// 2 × 2 banks.
    #[must_use]
    pub fn tiny(channels: usize) -> Self {
        let hbm = HbmConfig {
            num_bankgroups: 2,
            banks_per_group: 2,
            num_pseudo_channels: channels,
            ..HbmConfig::default()
        };
        PimDevice {
            hbm,
            mode: ExecMode::AllBank,
            cubes: 1,
            validate: false,
            trace: false,
            trace_events: DEFAULT_TRACE_EVENTS,
            tier: EngineTier::from_env(),
        }
    }

    /// Total banks (processing units) across all cubes.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.hbm.total_banks() * self.cubes
    }

    /// Split the device into `shards` equal slices of its pseudo-channels.
    ///
    /// Channels execute independently in the paper's design, so a slice of
    /// `num_pseudo_channels / shards` channels behaves exactly like a
    /// proportionally smaller device; external and internal bandwidth scale
    /// with the slice. This is how the `psim-sched` executor carves one
    /// cube into independent execution lanes that serve different jobs
    /// concurrently.
    ///
    /// Returns `None` when `shards` is zero, exceeds the channel count, or
    /// does not divide it evenly (unequal shards would break the
    /// equal-rows-per-bank layout assumptions).
    #[must_use]
    pub fn shard(&self, shards: usize) -> Option<PimDevice> {
        let channels = self.hbm.num_pseudo_channels;
        if shards == 0 || shards > channels || !channels.is_multiple_of(shards) {
            return None;
        }
        let mut hbm = self.hbm.clone();
        hbm.num_pseudo_channels = channels / shards;
        let frac = 1.0 / shards as f64;
        hbm.external_bw *= frac;
        hbm.internal_bw *= frac;
        Some(PimDevice {
            hbm,
            mode: self.mode,
            cubes: self.cubes,
            validate: self.validate,
            trace: self.trace,
            trace_events: self.trace_events,
            tier: self.tier,
        })
    }

    /// Aggregate external bandwidth in bytes/s.
    #[must_use]
    pub fn external_bw(&self) -> f64 {
        self.hbm.external_bw * self.cubes as f64
    }

    /// An engine simulating *one* cube of this device.
    #[must_use]
    pub fn make_engine(&self) -> Engine {
        Engine::new(EngineConfig {
            hbm: self.hbm.clone(),
            mode: self.mode,
            validate: self.validate,
            attribute: self.trace,
            event_limit: self.trace_events,
            tier: self.tier,
            ..Default::default()
        })
    }

    /// A host controller on this device's external interface.
    #[must_use]
    pub fn make_host(&self) -> HostController {
        HostController::new(self.external_bw())
    }

    /// Statically verify a kernel program with psim-lint before any
    /// memory placement. In validate mode an Error-level diagnostic
    /// fails the kernel up front (the engine would also refuse it at
    /// `load_kernel`, but by then the host has already placed data);
    /// with validation off this is free.
    ///
    /// # Errors
    ///
    /// [`psyncpim_core::CoreError::Verify`] carrying the Error-level
    /// diagnostics.
    pub fn verify_program(
        &self,
        program: &psyncpim_core::isa::Program,
    ) -> Result<(), psyncpim_core::CoreError> {
        if self.validate {
            psyncpim_core::isa::VerifiedProgram::new(program.clone())?;
        }
        Ok(())
    }
}

impl Default for PimDevice {
    fn default() -> Self {
        PimDevice::psync_1x()
    }
}

/// The combined result of running a kernel on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// In-PIM execution seconds (sum over sequential phases; bank-parallel
    /// inside each phase).
    pub kernel_s: f64,
    /// Host/external seconds (vector broadcast, partial-output collection,
    /// mode switches, kernel programming).
    pub host_s: f64,
    /// Bytes moved over the external interface.
    pub external_bytes: u64,
    /// DRAM command cycles summed over sequential phases (max over
    /// channels inside each phase) — the integer form of `kernel_s`, which
    /// schedulers use for exact deterministic accounting.
    pub dram_cycles: u64,
    /// DRAM commands issued (all phases, all cubes).
    pub commands: u64,
    /// Commands issued with all-bank scope.
    pub all_bank_commands: u64,
    /// Commands issued with per-bank scope.
    pub per_bank_commands: u64,
    /// Kernel loop iterations (max over phases of the slowest channel).
    pub rounds: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Number of engine phases (kernel launches).
    pub phases: u64,
    /// PUs that did productive work in at least one phase.
    pub active_pus: usize,
    /// Protocol/PU-invariant violations found by the independent checker
    /// (always zero unless [`PimDevice::validate`] is set).
    pub violations: u64,
    /// Memory instructions the PUs consumed productively (all phases).
    pub mem_ops: u64,
    /// Bank-level data bursts the channels delivered (all phases); the
    /// validation layer checks `mem_ops <= bank_bursts`.
    pub bank_bursts: u64,
    /// Wall-clock cycle attribution: the slowest channel's bus breakdown,
    /// accumulated phase by phase so `attr.total() == dram_cycles` when
    /// the device traces (all-zero otherwise).
    pub attr: CycleBreakdown,
    /// Full psim-trace registry: per-PU breakdowns plus the bounded
    /// stall-event stream (`None` unless [`PimDevice::trace`] is set).
    pub metrics: Option<MetricsRegistry>,
}

impl Default for KernelRun {
    fn default() -> Self {
        KernelRun {
            kernel_s: 0.0,
            host_s: 0.0,
            external_bytes: 0,
            dram_cycles: 0,
            commands: 0,
            all_bank_commands: 0,
            per_bank_commands: 0,
            rounds: 0,
            energy_j: 0.0,
            phases: 0,
            active_pus: 0,
            violations: 0,
            mem_ops: 0,
            bank_bursts: 0,
            attr: CycleBreakdown::default(),
            metrics: None,
        }
    }
}

impl KernelRun {
    /// Total wall-clock seconds (the paper's kernel time includes mode
    /// switching and programming overheads, §VII-A).
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.kernel_s + self.host_s
    }

    /// Fold one engine report's counters into the run — everything except
    /// the wall-clock fields (`kernel_s`, `dram_cycles`, `phases`), whose
    /// parallel-vs-sequential composition is kernel-specific (cubes inside
    /// one wave overlap; waves are sequential).
    pub fn absorb_engine(&mut self, report: &RunReport) {
        self.commands += report.commands.total_commands();
        self.all_bank_commands += report.commands.all_bank_commands;
        self.per_bank_commands += report.commands.per_bank_commands;
        self.rounds = self.rounds.max(report.rounds);
        self.energy_j += report.energy.total_j();
        self.active_pus = self.active_pus.max(report.active_pus);
        self.violations += report.violation_count();
        self.mem_ops += report.pu.mem_ops;
        self.bank_bursts += report.commands.bank_bursts;
        if let Some(m) = &report.metrics {
            match &mut self.metrics {
                Some(reg) => reg.absorb(m),
                None => self.metrics = Some(m.clone()),
            }
        }
    }

    /// Fold one engine phase's wall-clock attribution into [`Self::attr`]:
    /// the slowest channel's bus breakdown, whose total equals the phase's
    /// `dram_cycles`. Call it exactly once per `dram_cycles` contribution
    /// so `attr.total() == dram_cycles` stays an invariant under tracing.
    pub fn absorb_wall(&mut self, report: &RunReport) {
        if let Some(m) = &report.metrics {
            self.attr.add_all(&m.wall());
        }
    }

    /// Fold one sequential engine phase plus its host activity into the
    /// run.
    pub fn absorb_phase(&mut self, report: &RunReport, host: &HostController) {
        self.kernel_s += report.seconds;
        self.dram_cycles += report.dram_cycles;
        self.absorb_wall(report);
        self.absorb_engine(report);
        self.phases += 1;
        // Host time is absorbed once at the end via absorb_host; nothing
        // per-phase here beyond what the report carries.
        let _ = host;
    }

    /// Fold the host controller's accumulated report.
    pub fn absorb_host(&mut self, host: &HostController) {
        let r = host.report();
        self.host_s += r.external_s + r.control_s;
        self.external_bytes += r.external_bytes;
    }

    /// Merge another kernel's run (sequential composition, e.g. iterative
    /// solvers).
    pub fn merge(&mut self, other: &KernelRun) {
        self.kernel_s += other.kernel_s;
        self.host_s += other.host_s;
        self.external_bytes += other.external_bytes;
        self.dram_cycles += other.dram_cycles;
        self.commands += other.commands;
        self.all_bank_commands += other.all_bank_commands;
        self.per_bank_commands += other.per_bank_commands;
        self.rounds = self.rounds.max(other.rounds);
        self.energy_j += other.energy_j;
        self.phases += other.phases;
        self.active_pus = self.active_pus.max(other.active_pus);
        self.violations += other.violations;
        self.mem_ops += other.mem_ops;
        self.bank_bursts += other.bank_bursts;
        self.attr.add_all(&other.attr);
        if let Some(m) = &other.metrics {
            match &mut self.metrics {
                Some(reg) => reg.absorb(m),
                None => self.metrics = Some(m.clone()),
            }
        }
    }
}

/// Run a standard pre/post mode-switch cycle around a kernel phase on the
/// host (SB → AB (program) → AB-PIM (run) → SB) and account it.
pub fn mode_cycle(host: &mut HostController, program_len: usize) {
    host.switch_to(Mode::Ab);
    host.program_kernel(program_len);
    host.switch_to(Mode::AbPim);
    host.switch_to(Mode::Sb);
}

/// Pack sparse entries into the interleaved triples layout the batched
/// stream kernel expects: chunk pairs of `[rowsA|colsA|valsA|rowsB|colsB|
/// valsB]` blocks of `lanes` elements, padded with the −1 sentinel up to
/// `pairs` pairs.
#[must_use]
pub fn pack_triples(
    entries: &[(u32, u32, f64)],
    lanes: usize,
    pairs: usize,
    precision: Precision,
) -> Vec<f64> {
    use psyncpim_core::memory::SENTINEL;
    let mut data = vec![0.0f64; pairs * 6 * lanes];
    // Pre-fill index blocks with the sentinel.
    for pair in 0..pairs {
        let base = pair * 6 * lanes;
        for half in 0..2 {
            let hb = base + half * 3 * lanes;
            for i in 0..lanes {
                data[hb + i] = SENTINEL; // rows
                data[hb + lanes + i] = SENTINEL; // cols
            }
        }
    }
    for (k, &(r, c, v)) in entries.iter().enumerate() {
        let chunk = k / lanes;
        let lane = k % lanes;
        let base = (chunk / 2) * 6 * lanes + (chunk % 2) * 3 * lanes;
        data[base + lane] = f64::from(r);
        data[base + lanes + lane] = f64::from(c);
        data[base + 2 * lanes + lane] = precision.quantize(v);
    }
    data
}

/// Chunk pairs needed for `n` entries (at least one, and one extra pair of
/// sentinels so every bank sees the end marker).
#[must_use]
pub fn triple_pairs(n: usize, lanes: usize) -> usize {
    n.div_ceil(2 * lanes) + 1
}

/// Bindings for [`crate::programs::sparse_stream_batched`]: slots 0-5
/// stride through the interleaved triples region, slots 6/8 gather from
/// the dense vector region, slots 10/11 accumulate into the output region.
#[must_use]
pub fn batched_sparse_bindings(
    triples: psyncpim_core::RegionId,
    vector: psyncpim_core::RegionId,
    output: psyncpim_core::RegionId,
    lanes: usize,
) -> Vec<Option<psyncpim_core::memory::Binding>> {
    use psyncpim_core::memory::Binding;
    let stride = 6 * lanes;
    vec![
        Some(Binding::strided(triples, 0, stride)),
        Some(Binding::strided(triples, lanes, stride)),
        Some(Binding::strided(triples, 2 * lanes, stride)),
        Some(Binding::strided(triples, 3 * lanes, stride)),
        Some(Binding::strided(triples, 4 * lanes, stride)),
        Some(Binding::strided(triples, 5 * lanes, stride)),
        Some(Binding::new(vector)),
        None,
        Some(Binding::new(vector)),
        None,
        Some(Binding::new(output)),
        Some(Binding::new(output)),
        None,
        None,
    ]
}

/// Bytes of one element at a precision (helper shared by kernels).
#[must_use]
pub fn elem_bytes(p: Precision) -> usize {
    p.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_configs_match_paper() {
        assert_eq!(PimDevice::psync_1x().total_banks(), 256);
        assert_eq!(PimDevice::psync_3x().total_banks(), 768);
        assert!((PimDevice::psync_3x().external_bw() - 768e9).abs() < 1.0);
        assert_eq!(PimDevice::per_bank().mode, ExecMode::PerBank);
        assert_eq!(PimDevice::tiny(2).total_banks(), 8);
    }

    #[test]
    fn shard_splits_channels_and_bandwidth() {
        let dev = PimDevice::psync_1x();
        let quarter = dev.shard(4).unwrap();
        assert_eq!(quarter.hbm.num_pseudo_channels, 4);
        assert_eq!(quarter.total_banks(), 64);
        assert!((quarter.external_bw() - dev.external_bw() / 4.0).abs() < 1.0);
        assert_eq!(quarter.mode, dev.mode);
        // Identity shard is the device itself.
        assert_eq!(dev.shard(1).unwrap().total_banks(), dev.total_banks());
        // Invalid splits are rejected.
        assert!(dev.shard(0).is_none());
        assert!(dev.shard(3).is_none());
        assert!(dev.shard(32).is_none());
    }

    #[test]
    fn kernel_run_merges() {
        let mut a = KernelRun {
            kernel_s: 1.0,
            commands: 10,
            rounds: 5,
            phases: 1,
            ..Default::default()
        };
        let b = KernelRun {
            kernel_s: 2.0,
            commands: 20,
            rounds: 3,
            phases: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_s(), 3.0);
        assert_eq!(a.commands, 30);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.phases, 3);
    }

    #[test]
    fn mode_cycle_accounts_switches() {
        let mut host = HostController::new(256e9);
        mode_cycle(&mut host, 8);
        let r = host.report();
        assert_eq!(r.mode_switches, 4); // SB->AB->AB-PIM->AB->SB
        assert!(r.control_s > 0.0);
    }
}
