//! SpTRSV on pSyncPIM (paper §VI).
//!
//! The solve follows the paper's three mechanisms:
//!
//! 1. **Recursive block decomposition** ([`psim_sparse::BlockPlan`]):
//!    diagonal triangular blocks small enough for the in-PIM kernel, square
//!    off-diagonal blocks handled by the SpMV kernel.
//! 2. **Row-striped memory mapping** (Figure 7): each bank owns a
//!    contiguous stripe of the block's rows; its slice of the solution
//!    vector stays resident in the bank across levels.
//! 3. **Scalar-multiplication column sweep** (Algorithm 3) executed
//!    level-by-level: for each level the host reads the just-finalized
//!    scales from their owner banks (SB mode), broadcasts them to all banks
//!    (AB mode), and launches the stream kernel with an `RSUB`
//!    accumulation: `x[r] -= scale[c] · v` — no divisions anywhere, thanks
//!    to the host-side ILDU normalization (§VI-D).
//!
//! The per-level mode switches and scale reads are the serialization cost
//! that makes high-level-count matrices (the paper's `parabolic_fem`) slow
//! on pSyncPIM; the model reproduces that directly.

use crate::device::{
    batched_sparse_bindings, mode_cycle, pack_triples, triple_pairs, KernelRun, PimDevice,
};
use crate::programs;
use crate::spmv::SpmvPim;
use psim_sparse::triangular::UnitTriangular;
use psim_sparse::{BlockPlan, BlockStep, LevelSchedule, Precision};
use psyncpim_core::isa::assemble;
use psyncpim_core::memory::Binding;
use psyncpim_core::{CoreError, Engine, RegionId};

/// SpTRSV kernel runner.
#[derive(Debug, Clone)]
pub struct SptrsvPim {
    /// Target device (the diagonal-block solve uses one cube; the SpMV
    /// update steps use the whole device).
    pub device: PimDevice,
    /// Element precision (the paper evaluates SpTRSV in FP64).
    pub precision: Precision,
    /// Columns per level batch — bounded by the scales fitting one DRAM
    /// row (1 KB / 8 B = 128 for FP64).
    pub level_chunk: usize,
}

/// Result of a triangular solve.
#[derive(Debug, Clone)]
pub struct SptrsvResult {
    /// The solution `x` with `T x = b`.
    pub x: Vec<f64>,
    /// Timing/energy/commands.
    pub run: KernelRun,
    /// Total level batches executed across all diagonal blocks (the
    /// serialization metric).
    pub level_batches: u64,
    /// Diagonal solve steps in the block plan.
    pub solve_steps: usize,
    /// SpMV update steps in the block plan.
    pub update_steps: usize,
}

impl SptrsvPim {
    /// Runner on a device at FP64.
    #[must_use]
    pub fn new(device: PimDevice) -> Self {
        let precision = Precision::Fp64;
        let level_chunk = device.hbm.row_bytes() / precision.bytes();
        SptrsvPim {
            device,
            precision,
            level_chunk,
        }
    }

    /// Maximum diagonal-block dimension: one DRAM row of solution vector
    /// per bank across the cube (the paper's 32,768 for FP64 at 256 banks).
    #[must_use]
    pub fn max_block(&self) -> usize {
        let per_bank = self.device.hbm.row_bytes() / self.precision.bytes();
        per_bank * self.device.hbm.total_banks()
    }

    /// Solve `T x = b` on the PIM device.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != t.dim()`.
    pub fn run(&self, t: &UnitTriangular, b: &[f64]) -> Result<SptrsvResult, CoreError> {
        assert_eq!(b.len(), t.dim(), "sptrsv operand length mismatch");
        let plan = BlockPlan::build(t.triangle(), t.dim(), self.max_block());
        let mut x = b.to_vec();
        let mut run = KernelRun::default();
        let mut level_batches = 0u64;

        let spmv = SpmvPim::new(self.device.clone(), self.precision);

        for step in plan.steps() {
            match *step {
                BlockStep::Solve { lo, hi } => {
                    let batches = self.solve_block(t, lo, hi, &mut x, &mut run)?;
                    level_batches += batches;
                }
                BlockStep::Update {
                    row_lo,
                    row_hi,
                    col_lo,
                    col_hi,
                } => {
                    let m = t.strict().submatrix(row_lo, row_hi, col_lo, col_hi);
                    if m.nnz() == 0 {
                        continue;
                    }
                    let res = spmv.run(&m, &x[col_lo..col_hi])?;
                    for (i, v) in res.y.into_iter().enumerate() {
                        x[row_lo + i] -= v;
                    }
                    run.merge(&res.run);
                }
            }
        }

        Ok(SptrsvResult {
            x,
            run,
            level_batches,
            solve_steps: plan.num_solves(),
            update_steps: plan.num_updates(),
        })
    }

    /// Solve one diagonal block in-PIM; returns the number of level
    /// batches executed.
    fn solve_block(
        &self,
        t: &UnitTriangular,
        lo: usize,
        hi: usize,
        x: &mut [f64],
        run: &mut KernelRun,
    ) -> Result<u64, CoreError> {
        let m = hi - lo;
        let block = t.diagonal_block(lo, hi);
        let sched = LevelSchedule::analyze(&block);
        let nbanks = self.device.hbm.total_banks();
        let stripe = m.div_ceil(nbanks).max(1);
        let lanes = self.precision.lanes();
        let ebytes = self.precision.bytes();
        let program = assemble(&programs::sparse_stream_batched(
            self.precision,
            "MUL",
            "RSUB",
        ))?;
        self.device.verify_program(&program)?;
        let mut host = self.device.make_host();

        // One engine lives for the whole block: stripe regions persist
        // across levels.
        let mut engine = self.device.make_engine();
        let mut stripe_region: Option<RegionId> = None;
        for bank in 0..nbanks {
            let base = bank * stripe;
            let data: Vec<f64> = (0..stripe)
                .map(|i| {
                    let r = base + i;
                    if r < m {
                        self.precision.quantize(x[lo + r])
                    } else {
                        0.0
                    }
                })
                .collect();
            let id = engine.mem_mut(bank).alloc("x-stripe", ebytes, data);
            if bank == 0 {
                stripe_region = Some(id);
            }
        }
        let stripe_region = stripe_region.expect("at least one bank");
        // Upload of the block's b slice (the stripes).
        host.broadcast(m * ebytes);

        // Pre-bucket entries by column for fast per-level stream building.
        let csc = psim_sparse::Csc::from(block.strict());

        let mut batches = 0u64;
        for level in sched.iter() {
            for chunk in level.chunks(self.level_chunk) {
                batches += 1;
                // Scales: read the just-finalized x values from their
                // owner banks (SB mode), then broadcast to every bank.
                let scales: Vec<f64> = chunk
                    .iter()
                    .map(|&c| {
                        let bank = c / stripe;
                        engine.mem(bank).region(stripe_region).data()[c % stripe]
                    })
                    .collect();
                host.collect(chunk.len() * ebytes);
                host.broadcast(chunk.len() * ebytes);
                mode_cycle(&mut host, program.len());

                // Per-bank streams: entry (r, c) goes to the bank owning
                // row r, with the column remapped to its chunk position.
                let mut streams: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); nbanks];
                for (ci, &c) in chunk.iter().enumerate() {
                    for (r, v) in csc.col(c) {
                        let bank = r / stripe;
                        streams[bank].push(((r % stripe) as u32, ci as u32, v));
                    }
                }
                let max_nnz = streams.iter().map(Vec::len).max().unwrap_or(0);
                if max_nnz == 0 {
                    continue;
                }
                let pairs = triple_pairs(max_nnz, lanes);

                let mut bindings: Vec<Option<Binding>> = Vec::new();
                for (bank, entries) in streams.iter().enumerate() {
                    let triples = pack_triples(entries, lanes, pairs, self.precision);
                    let scales_padded: Vec<f64> = {
                        let mut s = scales.clone();
                        s.resize(chunk.len().max(1), 0.0);
                        s
                    };
                    let mem = engine.mem_mut(bank);
                    let rt = mem.alloc("triples", ebytes, triples);
                    let rs = mem.alloc("scales", ebytes, scales_padded);
                    if bank == 0 {
                        bindings = batched_sparse_bindings(rt, rs, stripe_region, lanes);
                    }
                }
                engine.load_kernel(program.clone(), bindings)?;
                let report = engine.run()?;
                run.kernel_s += report.seconds;
                run.dram_cycles += report.dram_cycles;
                run.absorb_wall(&report);
                run.absorb_engine(&report);
                run.phases += 1;
            }
        }

        // Read the solved stripes back into the host copy.
        for bank in 0..nbanks {
            let data = engine.mem(bank).region(stripe_region).data();
            for (i, &d) in data.iter().enumerate().take(stripe) {
                let r = bank * stripe + i;
                if r < m {
                    x[lo + r] = d;
                }
            }
        }
        host.collect(m * ebytes);
        run.absorb_host(&host);
        Ok(batches)
    }
}

/// Collect an [`Engine`]'s per-bank SRF values (helper shared with BLAS
/// reductions; exposed for diagnostics).
#[must_use]
pub fn srf_values(engine: &Engine) -> Vec<f64> {
    (0..engine.num_banks())
        .map(|b| engine.pu(b).srf())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::triangular::{unit_triangular_from, Triangle};
    use psim_sparse::{gen, Coo};

    fn runner() -> SptrsvPim {
        SptrsvPim::new(PimDevice::tiny(2))
    }

    #[test]
    fn solves_small_lower_triangle() {
        let a = gen::rmat_seeded(60, 5, 3, 77);
        let t = unit_triangular_from(&a, Triangle::Lower).unwrap();
        let want_x = gen::dense_vector(60, 9);
        let b = t.matvec(&want_x);
        let res = runner().run(&t, &b).unwrap();
        for (g, w) in res.x.iter().zip(&want_x) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        assert!(res.run.total_s() > 0.0);
        assert!(res.level_batches >= 1);
    }

    #[test]
    fn solves_upper_triangle() {
        let a = gen::rmat_seeded(48, 4, 5, 21);
        let t = unit_triangular_from(&a, Triangle::Upper).unwrap();
        let want_x = gen::dense_vector(48, 2);
        let b = t.matvec(&want_x);
        let res = runner().run(&t, &b).unwrap();
        for (g, w) in res.x.iter().zip(&want_x) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn recursive_blocks_used_for_large_dims() {
        // tiny device: max_block = 128 * 8 = 1024; a 2500-dim triangle
        // needs the recursive plan.
        let a = gen::banded_fem(2500, 20, 3, 13);
        let t = unit_triangular_from(&a, Triangle::Lower).unwrap();
        let want_x = vec![1.0; 2500];
        let b = t.matvec(&want_x);
        let r = runner();
        let res = r.run(&t, &b).unwrap();
        assert!(
            res.solve_steps > 1,
            "expected recursion: {}",
            res.solve_steps
        );
        assert!(res.update_steps >= 1);
        for (g, w) in res.x.iter().zip(&want_x) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    #[test]
    fn serial_chain_needs_many_level_batches() {
        // A pure chain has n levels — the worst case for pSyncPIM.
        let mut s = Coo::new(40, 40);
        for i in 1..40 {
            s.push(i, i - 1, 0.25);
        }
        let t = UnitTriangular::from_strict(Triangle::Lower, s).unwrap();
        let b = vec![1.0; 40];
        let res = runner().run(&t, &b).unwrap();
        assert_eq!(res.level_batches, 40, "one batch per level");
        let want = t.solve_colwise(&b).unwrap();
        for (g, w) in res.x.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_triangle_is_trivial() {
        let t = UnitTriangular::from_strict(Triangle::Lower, Coo::new(16, 16)).unwrap();
        let b = gen::dense_vector(16, 4);
        let res = runner().run(&t, &b).unwrap();
        assert_eq!(res.x, b);
        assert_eq!(res.level_batches, 1);
    }
}
