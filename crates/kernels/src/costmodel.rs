//! Analytical O(nnz) cost tier: estimate kernel DRAM cycles from the
//! structural statistics of the operands, without running the cycle
//! engine.
//!
//! The cycle engine walks every command of every round; this tier instead
//! predicts each engine launch ("phase") from four structural quantities:
//!
//! * **rounds** — schedule passes until the slowest PU exits, derived
//!   from the longest per-bank stream (nnz skew picks the maximum, the
//!   lockstep approximation: every other bank waits for it);
//! * **row switches per round** — the PRE+ACT pairs the schedule incurs
//!   when consecutive slots touch different regions (the batched layout's
//!   "three activations per eight elements");
//! * **bus pacing** — broadcast column commands pace at `tCCD_L`;
//! * **PU back-pressure** — VALU work per round in DRAM cycles; a round
//!   costs the slower of the bus and the PU.
//!
//! Everything the model reads (partition shapes, level schedules, stream
//! lengths) is O(nnz) to compute, so estimating a kernel costs about as
//! much as *placing* it — orders of magnitude less than cycle-walking it.
//! The constants below are calibrated against the cycle engine by the
//! `psim_fastpath` harness, which reports per-kernel error into
//! `results/BENCH_fastpath.json` and fails CI when the error drifts past
//! its bound.

use crate::device::{triple_pairs, PimDevice};
use psim_sparse::partition::{BankPartition, DistPolicy, PartitionConfig, PartitionScheme};
use psim_sparse::triangular::UnitTriangular;
use psim_sparse::{BlockPlan, BlockStep, Coo, Csc, Layout, LevelSchedule, Precision};

/// Estimated cost of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostEstimate {
    /// Predicted DRAM command cycles (the engine's `dram_cycles`).
    pub cycles: u64,
    /// Predicted engine launches (the kernel's `phases`).
    pub phases: u64,
}

impl CostEstimate {
    fn add_phase(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.phases += 1;
    }

    fn merge(&mut self, other: CostEstimate) {
        self.cycles += other.cycles;
        self.phases += other.phases;
    }
}

/// One memory command of a schedule pass: which operand region it touches
/// (same region ⇒ same open row within a pass) and its direction.
#[derive(Debug, Clone, Copy)]
struct Op {
    region: u8,
    write: bool,
}

const fn rd(region: u8) -> Op {
    Op {
        region,
        write: false,
    }
}

const fn wr(region: u8) -> Op {
    Op {
        region,
        write: true,
    }
}

/// The shape of one engine launch, as the per-round timing model sees it.
#[derive(Debug, Clone, Copy)]
struct PhaseShape {
    /// CRF entries programmed at setup (MRS commands).
    program_len: u64,
    /// The memory commands of one schedule pass, in issue order (the host
    /// completion poll — a read of whatever row is open — is implicit).
    ops: &'static [Op],
    /// Row crossings per pass *within* a region (a single-region shape
    /// never precharges at pass boundaries, but streaming through a region
    /// crosses to a new row every `row_bytes / stride` passes).
    row_crossings_per_round: f64,
    /// PU busy cycles per schedule pass on the slowest bank (lockstep
    /// approximation), in PU cycles. The pass costs the slower of the bus
    /// micro-simulation and this VALU term.
    pu_round_cycles: u64,
}

/// Batched sparse stream (`sparse_stream_batched`): slots 0–5 stream the
/// interleaved triples row, 6/8 gather the scales row, 10/11 accumulate
/// the output row — three activations per pass. The PU term is calibrated
/// against the engine: SPMOV pops cost one PU cycle per lane, so a dense
/// pass (full 2×lanes pair plus gathers and accumulates) runs ≈46 PU
/// cycles, which back-pressures the bus on dense streams.
const BATCHED_SPARSE: PhaseShape = PhaseShape {
    program_len: 14,
    ops: &[
        rd(0),
        rd(0),
        rd(0),
        rd(0),
        rd(0),
        rd(0),
        rd(1),
        rd(1),
        wr(2),
        wr(2),
    ],
    row_crossings_per_round: 0.0,
    pu_round_cycles: 46,
};

/// Dense BLAS-1 pass shapes (see the `CostModel` wrappers for the slot
/// layouts they mirror).
const OPS_AXPY: &[Op] = &[rd(0), rd(1), wr(1)];
const OPS_SCAL: &[Op] = &[rd(0), wr(0)];
const OPS_VV: &[Op] = &[rd(0), rd(1), wr(2)];
const OPS_DOT: &[Op] = &[rd(0), rd(1)];

/// DRAM cycles per PU cycle (the PU runs at 250 MHz against the 1 GHz
/// command clock) — mirrors the engine's constant.
const DRAM_CYCLES_PER_PU_CYCLE: u64 = 4;

/// O(nnz) analytical cost model for a device configuration.
///
/// Build once per device (cheap — copies a handful of timing fields) and
/// reuse across estimates.
#[derive(Debug, Clone)]
pub struct CostModel {
    timing: psim_dram::Timing,
    row_bytes: usize,
    banks_per_cube: usize,
    cubes: usize,
}

impl CostModel {
    /// Model for a device.
    #[must_use]
    pub fn new(device: &PimDevice) -> Self {
        CostModel {
            timing: device.hbm.timing,
            row_bytes: device.hbm.row_bytes(),
            banks_per_cube: device.hbm.total_banks(),
            cubes: device.cubes,
        }
    }

    /// Steady-state bus cycles of one schedule pass, by micro-simulating
    /// the pass against the exact bank timing rules (tRAS/tRTP/tWR bound
    /// the precharge, tRCD/tWTR/RL the columns, tCCD_L the pacing). Three
    /// passes are simulated and the last-to-second delta taken, so the
    /// cold first activation does not leak into the per-pass figure.
    fn round_period(&self, shape: &PhaseShape) -> f64 {
        const NEVER: i64 = i64::MIN / 4;
        let t = &self.timing;
        let (t_rcd, t_rp, t_ras) = (t.t_rcd as i64, t.t_rp as i64, t.t_ras as i64);
        let (t_ccd, t_rtp, t_wtr, t_wr) = (
            t.t_ccd_l as i64,
            t.t_rtp as i64,
            t.t_wtr as i64,
            t.t_wr as i64,
        );
        let (rl, wl) = (t.rl as i64, t.wl as i64);

        let mut now = 0i64;
        let mut open: Option<u8> = None;
        let (mut last_act, mut last_pre) = (NEVER, NEVER);
        let (mut last_rd, mut last_wr, mut last_col) = (NEVER, NEVER, NEVER);
        let mut col =
            |now: &mut i64, last_act: i64, last_rd: &mut i64, last_wr: &mut i64, write: bool| {
                let e = if write {
                    (last_act + t_rcd).max(*last_rd + rl)
                } else {
                    (last_act + t_rcd).max(*last_wr + wl + t_wtr)
                }
                .max(last_col + t_ccd);
                *now = (*now).max(e);
                if write {
                    *last_wr = *now;
                } else {
                    *last_rd = *now;
                }
                last_col = *now;
            };
        let mut prev_end = 0i64;
        let mut period = 0i64;
        for _ in 0..3 {
            for op in shape.ops {
                if open != Some(op.region) {
                    if open.is_some() {
                        // PRE: row must satisfy tRAS and the column tails.
                        now = now
                            .max(last_act + t_ras)
                            .max(last_rd + t_rtp)
                            .max(last_wr + wl + t_wr);
                        last_pre = now;
                    }
                    now = now.max(last_pre + t_rp);
                    last_act = now;
                    open = Some(op.region);
                }
                col(&mut now, last_act, &mut last_rd, &mut last_wr, op.write);
            }
            // Host completion poll: a column read of whatever row is open.
            col(&mut now, last_act, &mut last_rd, &mut last_wr, false);
            period = now - prev_end;
            prev_end = now;
        }
        period as f64
    }

    /// Predicted cycles for one engine launch of `shape` running `rounds`
    /// schedule passes (fractional: the pass that trips CEXIT truncates).
    fn phase_cycles(&self, shape: &PhaseShape, rounds: f64) -> u64 {
        let t = &self.timing;
        // Mode switch in, CRF programming, mode switch out: MRS commands,
        // bus-limited to two per cycle.
        let setup =
            (2 * psim_dram::mode::SWITCH_SEQUENCE_LEN as u64 + shape.program_len).div_ceil(2);
        let teardown = (2 * psim_dram::mode::SWITCH_SEQUENCE_LEN as u64).div_ceil(2) + t.t_rp;
        // Amortized in-region row crossings (single-region streams only):
        // the write tail, precharge and re-activation replace one tCCD gap.
        let crossing = (t.wl + t.t_wr + t.t_rp + t.t_rcd).saturating_sub(t.t_ccd_l) as f64;
        let bus = self.round_period(shape) + shape.row_crossings_per_round * crossing;
        // Lockstep back-pressure: the slowest PU's VALU time per pass; the
        // pass costs the slower of the bus and the PU.
        let per_round = bus.max((shape.pu_round_cycles * DRAM_CYCLES_PER_PU_CYCLE) as f64);
        let body = (rounds * per_round) as u64;
        let sub = setup + body + teardown;
        // Refresh tax: one tRFC stall every tREFI of busy time.
        sub + sub / t.t_refi * t.t_rfc
    }

    /// Effective schedule passes of the batched sparse stream for the
    /// longest per-bank stream of `max_nnz` entries: one interleaved pair
    /// per pass over `triple_pairs` pairs (sentinel included), minus the
    /// half pass the engine saves when CEXIT trips mid-schedule.
    fn batched_rounds(max_nnz: usize, lanes: usize) -> f64 {
        triple_pairs(max_nnz, lanes) as f64 - 0.5
    }

    /// SpMV `y = A x`: partition exactly as [`crate::SpmvPim`] does, then
    /// cost each wave by its slowest cube.
    #[must_use]
    pub fn spmv(&self, a: &Coo, precision: Precision) -> CostEstimate {
        self.spmv_with(a, precision, DistPolicy::RoundRobin, true)
    }

    /// [`CostModel::spmv`] with explicit placement policy and compression.
    #[must_use]
    pub fn spmv_with(
        &self,
        a: &Coo,
        precision: Precision,
        policy: DistPolicy,
        compress: bool,
    ) -> CostEstimate {
        self.batched_walk(a, 1, precision, policy, compress, PartitionScheme::Row1D)
    }

    /// SpMV from an explicit [`Layout`]: the format's execution stream
    /// (blocked formats pay their fill as extra entries), the layout's
    /// scheme and placement. This is the tuner's per-candidate score —
    /// the per-layout terms enter exactly as they do in the kernels: the
    /// expanded stream changes `max_nnz` per bank, the scheme changes the
    /// cut, the policy changes placement.
    #[must_use]
    pub fn spmv_layout(&self, a: &Coo, precision: Precision, layout: Layout) -> CostEstimate {
        let expanded = layout.format.expand(a);
        let a = expanded.as_ref().unwrap_or(a);
        self.batched_walk(a, 1, precision, layout.policy, true, layout.scheme)
    }

    /// SpMM from an explicit [`Layout`] over `width` fused vectors.
    #[must_use]
    pub fn spmm_layout(
        &self,
        a: &Coo,
        width: usize,
        precision: Precision,
        layout: Layout,
    ) -> CostEstimate {
        assert!(width >= 1, "spmm width must be at least 1");
        let expanded = layout.format.expand(a);
        let a = expanded.as_ref().unwrap_or(a);
        self.batched_walk(a, width, precision, layout.policy, true, layout.scheme)
    }

    /// The shared batched-stream walk: partition exactly as the kernels
    /// do, then cost each wave by its slowest cube, with each bank stream
    /// block-diagonally expanded `width` times (width 1 = plain SpMV).
    fn batched_walk(
        &self,
        a: &Coo,
        width: usize,
        precision: Precision,
        policy: DistPolicy,
        compress: bool,
        scheme: PartitionScheme,
    ) -> CostEstimate {
        let nbanks = self.banks_per_cube * self.cubes;
        let part = BankPartition::build(
            a,
            PartitionConfig {
                num_banks: nbanks,
                row_bytes: self.row_bytes,
                precision,
                policy,
                compress,
                scheme,
            },
        );
        // Per-bank nnz queues; wave w takes each bank's w-th submatrix.
        let mut per_bank: Vec<Vec<usize>> = vec![Vec::new(); nbanks];
        for s in part.submatrices() {
            per_bank[s.bank].push(s.nnz());
        }
        let waves = per_bank.iter().map(Vec::len).max().unwrap_or(0);
        let lanes = precision.lanes();

        let mut est = CostEstimate::default();
        for wave in 0..waves {
            let mut wave_cycles = 0u64;
            for cube in 0..self.cubes {
                let lo = cube * self.banks_per_cube;
                let max_nnz = (0..self.banks_per_cube)
                    .filter_map(|b| per_bank[lo + b].get(wave).copied())
                    .max()
                    .unwrap_or(0);
                if max_nnz == 0 {
                    continue;
                }
                let rounds = Self::batched_rounds(width * max_nnz, lanes);
                // Cubes run in parallel within a wave.
                wave_cycles = wave_cycles.max(self.phase_cycles(&BATCHED_SPARSE, rounds));
            }
            if wave_cycles > 0 {
                est.add_phase(wave_cycles);
            }
        }
        est
    }

    /// SpMM `Y = A X` over `width` fused vectors: same partition walk as
    /// [`CostModel::spmv`], but every bank stream is the *block-diagonal
    /// expansion* (`width × max_nnz` entries through one launch), exactly
    /// as [`crate::SpmmPim`] lays it out. Width 1 is identical to
    /// [`CostModel::spmv`].
    #[must_use]
    pub fn spmm(&self, a: &Coo, width: usize, precision: Precision) -> CostEstimate {
        self.spmm_with(a, width, precision, DistPolicy::RoundRobin, true)
    }

    /// [`CostModel::spmm`] with explicit placement policy and compression.
    #[must_use]
    pub fn spmm_with(
        &self,
        a: &Coo,
        width: usize,
        precision: Precision,
        policy: DistPolicy,
        compress: bool,
    ) -> CostEstimate {
        assert!(width >= 1, "spmm width must be at least 1");
        self.batched_walk(
            a,
            width,
            precision,
            policy,
            compress,
            PartitionScheme::Row1D,
        )
    }

    /// SpTRSV `T x = b`: walk the same block plan and level schedule as
    /// [`crate::SptrsvPim`], costing each level batch as one launch of the
    /// batched stream and each off-diagonal update as an SpMV.
    #[must_use]
    pub fn sptrsv(&self, t: &UnitTriangular, precision: Precision) -> CostEstimate {
        let per_bank_row = self.row_bytes / precision.bytes();
        let max_block = per_bank_row * self.banks_per_cube;
        let level_chunk = per_bank_row;
        let plan = BlockPlan::build(t.triangle(), t.dim(), max_block);
        let lanes = precision.lanes();
        let nbanks = self.banks_per_cube;

        let mut est = CostEstimate::default();
        for step in plan.steps() {
            match *step {
                BlockStep::Solve { lo, hi } => {
                    let m = hi - lo;
                    let block = t.diagonal_block(lo, hi);
                    let sched = LevelSchedule::analyze(&block);
                    let stripe = m.div_ceil(nbanks).max(1);
                    let csc = Csc::from(block.strict());
                    // Per-bank stream lengths, rebuilt per level batch
                    // exactly as the solver buckets entries by owner row.
                    let mut bank_nnz = vec![0usize; nbanks];
                    for level in sched.iter() {
                        for chunk in level.chunks(level_chunk) {
                            bank_nnz.iter_mut().for_each(|v| *v = 0);
                            for &c in chunk {
                                for (r, _) in csc.col(c) {
                                    bank_nnz[r / stripe] += 1;
                                }
                            }
                            let max_nnz = bank_nnz.iter().copied().max().unwrap_or(0);
                            if max_nnz == 0 {
                                continue;
                            }
                            let rounds = Self::batched_rounds(max_nnz, lanes);
                            est.add_phase(self.phase_cycles(&BATCHED_SPARSE, rounds));
                        }
                    }
                }
                BlockStep::Update {
                    row_lo,
                    row_hi,
                    col_lo,
                    col_hi,
                } => {
                    let m = t.strict().submatrix(row_lo, row_hi, col_lo, col_hi);
                    if m.nnz() == 0 {
                        continue;
                    }
                    est.merge(self.spmv(&m, precision));
                }
            }
        }
        est
    }

    /// Dense BLAS-1 stripe kernel of `n` elements with the given schedule
    /// shape (see the `kind`-specific wrappers below).
    fn blas1(&self, shape: PhaseShape, n: usize, precision: Precision) -> CostEstimate {
        let lanes = precision.lanes();
        let sl = n
            .div_ceil(self.banks_per_cube * self.cubes)
            .div_ceil(lanes)
            .max(1)
            * lanes;
        let rounds = (sl / lanes) as f64;
        let mut est = CostEstimate::default();
        est.add_phase(self.phase_cycles(&shape, rounds));
        est
    }

    /// DAXPY `y ← αx + y`.
    #[must_use]
    pub fn axpy(&self, n: usize, precision: Precision) -> CostEstimate {
        // Slots 0 (x read), 1 (y read), 4 (y write): the store lands in
        // the already-open y row, so two activations per pass.
        self.blas1(
            PhaseShape {
                program_len: 6,
                ops: OPS_AXPY,
                row_crossings_per_round: 0.0,
                pu_round_cycles: 8,
            },
            n,
            precision,
        )
    }

    /// DSCAL `x ← αx`.
    #[must_use]
    pub fn scal(&self, n: usize, precision: Precision) -> CostEstimate {
        // Slots 0/2 share the x region: the row stays open across passes,
        // precharging only when the stream crosses into the next row.
        let per_row = (self.row_bytes / (precision.lanes() * precision.bytes())).max(1);
        self.blas1(
            PhaseShape {
                program_len: 4,
                ops: OPS_SCAL,
                row_crossings_per_round: 1.0 / per_row as f64,
                pu_round_cycles: 6,
            },
            n,
            precision,
        )
    }

    /// Element-wise `z = x (op) y`.
    #[must_use]
    pub fn vv(&self, n: usize, precision: Precision) -> CostEstimate {
        // Slots 0 (x), 1 (y), 3 (z): three regions per pass.
        self.blas1(
            PhaseShape {
                program_len: 6,
                ops: OPS_VV,
                row_crossings_per_round: 0.0,
                pu_round_cycles: 8,
            },
            n,
            precision,
        )
    }

    /// DDOT `x · y` (SRF-accumulated; host reduces per-bank partials).
    #[must_use]
    pub fn dot(&self, n: usize, precision: Precision) -> CostEstimate {
        // Slots 0 (x), 1 (y): one hop out, one hop back per pass.
        self.blas1(
            PhaseShape {
                program_len: 6,
                ops: OPS_DOT,
                row_crossings_per_round: 0.0,
                pu_round_cycles: 8,
            },
            n,
            precision,
        )
    }

    /// DNRM2 — the DDOT program against a single operand region.
    #[must_use]
    pub fn norm2(&self, n: usize, precision: Precision) -> CostEstimate {
        self.dot(n, precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PimDevice, SpmvPim};
    use psim_sparse::gen;

    #[test]
    fn estimates_are_monotone_in_problem_size() {
        let model = CostModel::new(&PimDevice::tiny(2));
        let small = model.spmv(&gen::rmat(64, 3, 7), Precision::Fp64);
        let large = model.spmv(&gen::rmat(512, 8, 7), Precision::Fp64);
        assert!(small.cycles > 0);
        assert!(large.cycles > small.cycles);
        assert!(model.axpy(4096, Precision::Fp64).cycles > model.axpy(64, Precision::Fp64).cycles);
    }

    #[test]
    fn spmv_estimate_tracks_engine_within_factor_two() {
        // The calibration harness reports exact error; this test pins the
        // order of magnitude so a regression can't hide behind the bound.
        let device = PimDevice::tiny(2);
        let model = CostModel::new(&device);
        for (n, deg, seed) in [(96usize, 5usize, 11u64), (400, 8, 3)] {
            let a = gen::rmat(n, deg, seed);
            let x = gen::dense_vector(n, 3);
            let actual = SpmvPim::new(device.clone(), Precision::Fp64)
                .run(&a, &x)
                .unwrap()
                .run
                .dram_cycles;
            let est = model.spmv(&a, Precision::Fp64).cycles;
            let ratio = est as f64 / actual as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "rmat({n},{deg}): est {est} vs actual {actual} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn spmm_estimate_tracks_fusion_economics() {
        // Width 1 must collapse to the SpMV estimate, and a fused pass of
        // width w must cost less than w independent SpMV passes (the fixed
        // setup/teardown is paid once) while still growing with w.
        let device = PimDevice::tiny(2);
        let model = CostModel::new(&device);
        let a = gen::rmat(128, 4, 21);
        let spmv = model.spmv(&a, Precision::Fp64);
        assert_eq!(model.spmm(&a, 1, Precision::Fp64), spmv);
        let w = 8usize;
        let fused = model.spmm(&a, w, Precision::Fp64);
        assert!(fused.cycles > spmv.cycles);
        assert!(
            fused.cycles < w as u64 * spmv.cycles,
            "fused {} must beat {w} solo passes {}",
            fused.cycles,
            w as u64 * spmv.cycles
        );
        assert_eq!(fused.phases, spmv.phases);
    }

    #[test]
    fn spmm_estimate_tracks_engine_within_factor_two() {
        let device = PimDevice::tiny(2);
        let model = CostModel::new(&device);
        let a = gen::rmat(128, 4, 21);
        let xs: Vec<Vec<f64>> = (0..6).map(|v| gen::dense_vector(128, v)).collect();
        let actual = crate::SpmmPim::new(device, Precision::Fp64)
            .run(&a, &xs)
            .unwrap()
            .run
            .dram_cycles;
        let est = model.spmm(&a, xs.len(), Precision::Fp64).cycles;
        let ratio = est as f64 / actual as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "est {est} vs actual {actual} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn phase_count_matches_wave_structure() {
        let device = PimDevice::tiny(2);
        let model = CostModel::new(&device);
        let a = gen::banded_fem(1400, 12, 6, 7);
        let x = gen::dense_vector(1400, 5);
        let r = SpmvPim::new(device, Precision::Fp64).run(&a, &x).unwrap();
        let est = model.spmv(&a, Precision::Fp64);
        assert_eq!(est.phases, r.run.phases, "waves must match the runner");
    }
}
