//! SpMV on pSyncPIM (paper §V).
//!
//! The matrix is compressed and distributed with
//! [`psim_sparse::partition::BankPartition`]; each bank may receive several
//! submatrices, which execute as sequential *waves* (one kernel launch per
//! wave — every wave needs its own input-vector broadcast anyway). Within a
//! wave every bank runs the Algorithm-2 stream kernel in lockstep; banks
//! whose stream is shorter pad with the −1 sentinel and exit early via
//! CEXIT. The host replicates compacted input-vector slices and accumulates
//! non-zero partial outputs over the external bus.

use crate::device::{
    batched_sparse_bindings, mode_cycle, pack_triples, triple_pairs, KernelRun, PimDevice,
};
use crate::programs;
use psim_sparse::partition::{
    BankPartition, DistPolicy, PartitionConfig, PartitionScheme, PartitionStats, SubMatrix,
};
use psim_sparse::{Coo, Layout, MatrixFormat, Precision};
use psyncpim_core::isa::{assemble, BinaryOp};
use psyncpim_core::memory::Binding;
use psyncpim_core::CoreError;

/// SpMV kernel runner.
#[derive(Debug, Clone)]
pub struct SpmvPim {
    /// Target device.
    pub device: PimDevice,
    /// Element precision (the paper runs most matrices FP64 but exploits
    /// INT8 on `soc-sign-epinions` and `Stanford`).
    pub precision: Precision,
    /// Submatrix placement policy.
    pub policy: DistPolicy,
    /// Semiring multiply (applied to `val ⊙ x[col]`); MUL for arithmetic
    /// SpMV.
    pub mul: BinaryOp,
    /// Semiring accumulate (applied into `y[row]`); ADD for arithmetic
    /// SpMV, MIN for the min-plus semiring of SSSP/CC, MAX for BFS
    /// reachability.
    pub acc: BinaryOp,
    /// Matrix compression (paper Figure 6); disable only for the ablation.
    pub compress: bool,
    /// Storage format the matrix executes from. Element formats (COO/CSR)
    /// stream the true non-zeros; blocked formats (BCSR/BCOO) stream
    /// their tiles with fill zeros — sound only for the arithmetic
    /// semiring, which [`SpmvPim::run`] asserts.
    pub format: MatrixFormat,
    /// Partition scheme (1D row strips or a 2D column-blocked variant).
    pub scheme: PartitionScheme,
}

/// Result of a distributed SpMV.
#[derive(Debug, Clone)]
pub struct SpmvResult {
    /// The product `y = A x`.
    pub y: Vec<f64>,
    /// Timing/energy/commands.
    pub run: KernelRun,
    /// Distribution statistics of the partition (Figure 8 analysis).
    pub stats: PartitionStats,
    /// Number of sequential waves executed.
    pub waves: usize,
}

impl SpmvPim {
    /// Runner on the given device at a precision.
    #[must_use]
    pub fn new(device: PimDevice, precision: Precision) -> Self {
        SpmvPim {
            device,
            precision,
            policy: DistPolicy::RoundRobin,
            mul: BinaryOp::Mul,
            acc: BinaryOp::Add,
            compress: true,
            format: MatrixFormat::Coo,
            scheme: PartitionScheme::Row1D,
        }
    }

    /// Runner over an arbitrary semiring `(mul, acc)` — the GraphBLAS-style
    /// generality the PU's Binary field provides (paper Table IV).
    #[must_use]
    pub fn with_semiring(
        device: PimDevice,
        precision: Precision,
        mul: BinaryOp,
        acc: BinaryOp,
    ) -> Self {
        SpmvPim {
            device,
            precision,
            policy: DistPolicy::RoundRobin,
            mul,
            acc,
            compress: true,
            format: MatrixFormat::Coo,
            scheme: PartitionScheme::Row1D,
        }
    }

    /// Adopt a tuned [`Layout`] (format, scheme, policy) wholesale.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.format = layout.format;
        self.scheme = layout.scheme;
        self.policy = layout.policy;
        self
    }

    /// The layout this runner executes from.
    #[must_use]
    pub fn layout(&self) -> Layout {
        Layout {
            format: self.format,
            scheme: self.scheme,
            policy: self.policy,
        }
    }

    /// Compute `y = A x` on the PIM device.
    ///
    /// # Errors
    ///
    /// Propagates engine/program failures.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != a.ncols()`.
    pub fn run(&self, a: &Coo, x: &[f64]) -> Result<SpmvResult, CoreError> {
        assert_eq!(x.len(), a.ncols(), "spmv operand length mismatch");
        // Blocked fill zeros are inert only when 0·x is the accumulator
        // identity — the arithmetic semiring. Min/Max accumulation would
        // absorb the fill, so refuse rather than corrupt.
        assert!(
            !self.format.is_blocked() || (self.mul == BinaryOp::Mul && self.acc == BinaryOp::Add),
            "blocked formats require the arithmetic (Mul, Add) semiring"
        );
        let expanded = self.format.expand(a);
        let a = expanded.as_ref().unwrap_or(a);
        let nbanks = self.device.total_banks();
        let part = BankPartition::build(
            a,
            PartitionConfig {
                num_banks: nbanks,
                row_bytes: self.device.hbm.row_bytes(),
                precision: self.precision,
                policy: self.policy,
                compress: self.compress,
                scheme: self.scheme,
            },
        );
        let stats = part.stats();

        // Group submatrices into per-bank queues; wave w takes each bank's
        // w-th submatrix.
        let mut per_bank: Vec<Vec<&SubMatrix>> = vec![Vec::new(); nbanks];
        for s in part.submatrices() {
            per_bank[s.bank].push(s);
        }
        let waves = per_bank.iter().map(Vec::len).max().unwrap_or(0);

        let lanes = self.precision.lanes();
        let ebytes = self.precision.bytes();
        let banks_per_cube = self.device.hbm.total_banks();
        let program = assemble(&programs::sparse_stream_batched(
            self.precision,
            &self.mul.to_string(),
            &self.acc.to_string(),
        ))?;
        self.device.verify_program(&program)?;
        let identity = self.acc.identity();

        let mut host = self.device.make_host();
        let mut run = KernelRun::default();
        let mut y = vec![identity; a.nrows()];

        for wave in 0..waves {
            // Broadcast this wave's gathered input slices.
            let bcast: usize = per_bank
                .iter()
                .filter_map(|q| q.get(wave))
                .map(|s| s.input_len() * ebytes)
                .sum();
            host.broadcast(bcast);
            mode_cycle(&mut host, program.len());

            let mut wave_seconds = 0.0f64;
            let mut wave_cycles = 0u64;
            let mut wave_wall = psyncpim_core::CycleBreakdown::default();
            let mut collect_bytes = 0usize;
            for cube in 0..self.device.cubes {
                let lo = cube * banks_per_cube;
                // Equal-rows-per-bank padding within the cube.
                let max_nnz = (0..banks_per_cube)
                    .filter_map(|b| per_bank[lo + b].get(wave))
                    .map(|s| s.nnz())
                    .max()
                    .unwrap_or(0);
                if max_nnz == 0 {
                    continue;
                }
                let pairs = triple_pairs(max_nnz, lanes);
                let max_in = (0..banks_per_cube)
                    .filter_map(|b| per_bank[lo + b].get(wave))
                    .map(|s| s.input_len())
                    .max()
                    .unwrap_or(1)
                    .max(1);
                let max_out = (0..banks_per_cube)
                    .filter_map(|b| per_bank[lo + b].get(wave))
                    .map(|s| s.output_len())
                    .max()
                    .unwrap_or(1)
                    .max(1);

                let mut engine = self.device.make_engine();
                let mut bindings: Vec<Option<Binding>> = Vec::new();
                for b in 0..banks_per_cube {
                    let sub = per_bank[lo + b].get(wave);
                    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
                    let mut xg = vec![0.0; max_in];
                    if let Some(s) = sub {
                        entries = s.entries.iter().map(|e| (e.row, e.col, e.val)).collect();
                        for (i, &c) in s.cols.iter().enumerate() {
                            xg[i] = self.precision.quantize(x[c as usize]);
                        }
                    }
                    let triples = pack_triples(&entries, lanes, pairs, self.precision);
                    let mem = engine.mem_mut(b);
                    let rt = mem.alloc("triples", ebytes, triples);
                    let rx = mem.alloc("x", ebytes, xg);
                    let ry = mem.alloc("y", ebytes, vec![identity; max_out]);
                    if b == 0 {
                        bindings = batched_sparse_bindings(rt, rx, ry, lanes);
                    }
                }
                engine.load_kernel(program.clone(), bindings.clone())?;
                let report = engine.run()?;
                wave_seconds = wave_seconds.max(report.seconds);
                // Cubes run in parallel within a wave: the wave's cycles
                // (and its wall-clock attribution) come from the slowest
                // cube of the wave.
                if report.dram_cycles > wave_cycles {
                    wave_cycles = report.dram_cycles;
                    if let Some(m) = &report.metrics {
                        wave_wall = m.wall();
                    }
                }
                run.absorb_engine(&report);

                // Host accumulates only rows that received partial sums.
                let y_region = bindings[10].expect("output bound").region;
                for b in 0..banks_per_cube {
                    if let Some(s) = per_bank[lo + b].get(wave) {
                        let data = engine.mem(b).region(y_region).data();
                        let mut touched: Vec<u32> = s.entries.iter().map(|e| e.row).collect();
                        touched.sort_unstable();
                        touched.dedup();
                        for &lr in &touched {
                            let g = s.row_lo + lr as usize;
                            y[g] = self.acc.apply(data[lr as usize], y[g]);
                        }
                        collect_bytes += touched.len() * (ebytes + 4);
                    }
                }
            }
            run.kernel_s += wave_seconds;
            run.dram_cycles += wave_cycles;
            run.attr.add_all(&wave_wall);
            run.phases += 1;
            host.collect(collect_bytes);
        }
        run.absorb_host(&host);

        Ok(SpmvResult {
            y,
            run,
            stats,
            waves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::gen;

    fn tiny_runner(precision: Precision) -> SpmvPim {
        SpmvPim::new(PimDevice::tiny(2), precision)
    }

    #[test]
    fn spmv_matches_reference_fp64() {
        let a = gen::rmat(96, 5, 11);
        let x = gen::dense_vector(96, 3);
        let res = tiny_runner(Precision::Fp64).run(&a, &x).unwrap();
        let want = a.spmv(&x);
        for (i, (g, w)) in res.y.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9, "row {i}: {g} vs {w}");
        }
        assert!(res.run.kernel_s > 0.0);
        assert!(res.run.total_s() > res.run.kernel_s);
        assert!(res.waves >= 1);
    }

    #[test]
    fn spmv_multiwave_banded() {
        // A banded matrix on a tiny device forces multiple waves per bank.
        let a = gen::banded_fem(1400, 12, 6, 7);
        let x = gen::dense_vector(1400, 5);
        let res = tiny_runner(Precision::Fp64).run(&a, &x).unwrap();
        assert!(res.waves > 1, "expected multiple waves, got {}", res.waves);
        let want = a.spmv(&x);
        for (g, w) in res.y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn spmv_int8_completes_and_reduces_traffic() {
        let a = gen::rmat(128, 4, 9);
        let x = vec![1.0; 128];
        let f64run = tiny_runner(Precision::Fp64).run(&a, &x).unwrap();
        let i8run = tiny_runner(Precision::Int8).run(&a, &x).unwrap();
        assert!(i8run.run.external_bytes < f64run.run.external_bytes);
        // Values are small positive ints (quantized), x = 1: products are
        // exact, sums may saturate only beyond 127 — this graph is small
        // enough to stay exact.
        let want = {
            let mut q = Coo::new(128, 128);
            for e in a.iter() {
                q.push(e.row, e.col, Precision::Int8.quantize(e.val));
            }
            q.spmv(&x)
        };
        for (g, w) in i8run.y.iter().zip(&want) {
            assert!((g - w).abs() <= 1.0, "{g} vs {w}");
        }
    }

    #[test]
    fn min_plus_semiring_relaxation() {
        // d'[r] = min over entries (r, c) of (w + d[c]) - one SSSP step.
        let mut a = Coo::new(4, 4);
        a.push(1, 0, 2.0);
        a.push(2, 1, 1.0);
        a.push(2, 0, 5.0);
        let d = vec![0.0, 3.0, 100.0, 100.0];
        let r = SpmvPim::with_semiring(
            PimDevice::tiny(1),
            Precision::Fp64,
            psyncpim_core::isa::BinaryOp::Add,
            psyncpim_core::isa::BinaryOp::Min,
        )
        .run(&a, &d)
        .unwrap();
        assert_eq!(r.y[1], 2.0); // 2 + 0
        assert_eq!(r.y[2], 4.0); // min(1 + 3, 5 + 0)
        assert!(r.y[0].is_infinite(), "no in-edges keeps the identity");
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = Coo::new(10, 10);
        let res = tiny_runner(Precision::Fp64).run(&a, &[0.0; 10]).unwrap();
        assert_eq!(res.y, vec![0.0; 10]);
        assert_eq!(res.waves, 0);
    }
}
