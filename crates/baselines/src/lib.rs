//! Comparison baselines for the pSyncPIM evaluation.
//!
//! The paper compares against an NVIDIA RTX 3080 (CUDA 11.8, cuSPARSE,
//! GraphBLAST), the SpaceA asynchronous PIM accelerator, and the per-bank
//! PIM control mode. Real GPU hardware and the SpaceA RTL are not
//! reproducible here, so this crate provides **calibrated analytical
//! models** (see DESIGN.md §3): every kernel the paper measures on the GPU
//! is memory-bandwidth-bound, so a roofline with measured-efficiency
//! factors and per-launch overheads reproduces the rankings and crossover
//! points the paper reports. The per-bank baseline is *not* a model — it
//! runs on the real simulator via [`psyncpim_core::ExecMode::PerBank`].

pub mod gpu;
pub mod spacea;
pub mod spgemm_accel;

pub use gpu::GpuModel;
pub use spacea::SpaceAModel;
pub use spgemm_accel::SpgemmAccel;
