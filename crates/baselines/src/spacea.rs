//! SpaceA model: asynchronous, standalone per-bank PIM (HPCA'21, paper ref 47).
//!
//! SpaceA integrates memory controllers in the logic die: every processing
//! element streams its partition at full per-bank bandwidth with no
//! lockstep rounds, no mode switches and no host command bus — plus a
//! bank-level CAM that captures input-vector reuse. The paper reports
//! pSyncPIM at 0.56× SpaceA on average (§VII-B): the price of keeping the
//! standard JEDEC interface.
//!
//! The model distributes the matrix with the *same* partitioner as
//! pSyncPIM (SpaceA's own partitioner also balances per-bank work)
//! and charges each bank `bytes / per-bank-bandwidth`, with a CAM hit
//! rate discounting repeated vector reads. SpaceA supports **FP64 only**
//! (§VII-B: "SpaceA covers all benchmark matrices into FP64") — the model
//! always uses 8-byte values regardless of the matrix's native precision,
//! which is exactly where pSyncPIM wins on `soc-sign-epinions`/`Stanford`.

use psim_sparse::partition::{BankPartition, PartitionConfig};
use psim_sparse::{Coo, Precision};
use serde::{Deserialize, Serialize};

/// Analytical SpaceA SpMV model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceAModel {
    /// Processing elements (one per bank; the paper's HMC has 256 across
    /// 8 stacks).
    pub num_banks: usize,
    /// Per-bank streaming bandwidth in bytes/s (internal aggregate /
    /// banks).
    pub per_bank_bw: f64,
    /// Streaming efficiency of the asynchronous PE (no lockstep waste).
    pub efficiency: f64,
    /// CAM hit rate on input-vector reads.
    pub cam_hit_rate: f64,
    /// Fixed kernel setup in seconds.
    pub setup_s: f64,
}

impl SpaceAModel {
    /// The configuration matched to the pSyncPIM cube (same 2 TB/s of
    /// internal bandwidth over 256 banks).
    #[must_use]
    pub fn hmc_256() -> Self {
        SpaceAModel {
            num_banks: 256,
            // HMC internal bandwidth (~320 GB/s aggregate) over 256 PEs —
            // far below HBM2's 2 TB/s, but used without lockstep waste.
            per_bank_bw: 320e9 / 256.0,
            efficiency: 0.9,
            cam_hit_rate: 0.5,
            setup_s: 2e-6,
        }
    }

    /// SpMV wall-clock: the slowest bank's stream time (asynchronous PEs
    /// don't wait for each other, but the result needs every bank).
    #[must_use]
    pub fn spmv_seconds(&self, a: &Coo) -> f64 {
        // FP64 only.
        let p = Precision::Fp64;
        let part = BankPartition::build(
            a,
            PartitionConfig {
                num_banks: self.num_banks,
                row_bytes: 1024,
                precision: p,
                policy: psim_sparse::partition::DistPolicy::RoundRobin,
                compress: true,
                scheme: psim_sparse::PartitionScheme::Row1D,
            },
        );
        let loads = part.bank_nnz();
        let max_nnz = loads.into_iter().max().unwrap_or(0) as f64;
        // Per element: value + 2 indices (stored at 4 B each in SpaceA's
        // CSR-like format), the output partial, and the vector read
        // discounted by the CAM.
        let bytes_per_elem = p.bytes() as f64 + 8.0 + p.bytes() as f64 * (1.0 - self.cam_hit_rate);
        self.setup_s + max_nnz * bytes_per_elem / (self.per_bank_bw * self.efficiency)
    }
}

impl Default for SpaceAModel {
    fn default() -> Self {
        SpaceAModel::hmc_256()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::gen;

    #[test]
    fn time_scales_with_worst_bank() {
        let m = SpaceAModel::hmc_256();
        let balanced = gen::erdos_renyi(4096, 4096, 100_000, 1);
        let skewed = gen::web_hubs(4096, 100_000, 2);
        let tb = m.spmv_seconds(&balanced);
        let ts = m.spmv_seconds(&skewed);
        assert!(tb > 0.0 && ts > 0.0);
        // Row-hub skew concentrates work: never faster than balanced.
        assert!(ts >= tb * 0.8, "balanced {tb} vs skewed {ts}");
    }

    #[test]
    fn ignores_precision_advantage() {
        // SpaceA runs FP64 regardless — the same matrix costs the same.
        let m = SpaceAModel::hmc_256();
        let a = gen::rmat(2048, 5, 3);
        let t = m.spmv_seconds(&a);
        assert!(t > m.setup_s);
    }
}
