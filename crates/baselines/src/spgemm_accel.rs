//! InnerSP-style SpGEMM accelerator model (the paper's reference 4, used in §VII-E).
//!
//! The paper attaches a locality-aware inner-product SpGEMM accelerator to
//! pSyncPIM for the Triangle Counting workload (Figure 13). The accelerator
//! is efficient at sparse-sparse matrix multiplication but, in the
//! accelerator-only configuration, must treat SpMV as a degenerate
//! non-square SpGEMM — "which is inefficient" — because a dense vector has
//! no sparsity for the inner-product skipping to exploit and the pipeline's
//! row-fetch machinery is amortized over a single output column.

use serde::{Deserialize, Serialize};

/// Throughput model of an InnerSP-class SpGEMM accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpgemmAccel {
    /// Effective multiply-accumulate throughput on genuine SpGEMM, in
    /// operations per second.
    pub spgemm_ops: f64,
    /// Effective throughput when abusing the pipeline for SpMV (non-square
    /// SpGEMM mode) — substantially lower.
    pub spmv_as_spgemm_ops: f64,
    /// Fixed per-invocation overhead in seconds.
    pub setup_s: f64,
}

impl SpgemmAccel {
    /// Calibration matched to the paper's Figure 13 behaviour: on the
    /// power-law TC graphs, accelerator-only time splits roughly evenly
    /// between genuine SpGEMM and SpMV-as-SpGEMM, so offloading the SpMV
    /// kernels to pSyncPIM doubles throughput. A dense-vector operand
    /// defeats the inner-product pipeline's sparsity skipping and row
    /// reuse, collapsing throughput to its row-fetch rate.
    #[must_use]
    pub fn innersp() -> Self {
        SpgemmAccel {
            spgemm_ops: 64e9,
            spmv_as_spgemm_ops: 0.25e9,
            setup_s: 3e-6,
        }
    }

    /// SpGEMM time given the multiply count (Σ over rows of products).
    #[must_use]
    pub fn spgemm_seconds(&self, multiplies: f64) -> f64 {
        self.setup_s + multiplies / self.spgemm_ops
    }

    /// SpMV executed as a non-square SpGEMM (accelerator-only mode).
    #[must_use]
    pub fn spmv_seconds(&self, nnz: usize) -> f64 {
        self.setup_s + nnz as f64 / self.spmv_as_spgemm_ops
    }
}

impl Default for SpgemmAccel {
    fn default() -> Self {
        SpgemmAccel::innersp()
    }
}

/// Multiply count of `A · A` for an adjacency matrix (the TC inner kernel):
/// Σ_(i,j)∈A nnz(row j).
#[must_use]
pub fn spgemm_multiplies(a: &psim_sparse::Csr) -> f64 {
    let mut total = 0.0;
    for r in 0..a.nrows() {
        for (c, _) in a.row(r) {
            total += a.row_nnz(c) as f64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::{gen, Csr};

    #[test]
    fn spmv_mode_is_much_slower_per_op() {
        let acc = SpgemmAccel::innersp();
        let n = 1_000_000usize;
        let as_spgemm = acc.spmv_seconds(n);
        let genuine = acc.spgemm_seconds(n as f64);
        assert!(as_spgemm > 4.0 * genuine);
    }

    #[test]
    fn multiply_count_matches_hand_example() {
        // A = [[0,1],[1,1]]: row nnz = [1,2].
        // Multiplies = nnz(row 1) [from (0,1)] + nnz(row 0) + nnz(row 1).
        let mut a = psim_sparse::Coo::new(2, 2);
        a.push(0, 1, 1.0);
        a.push(1, 0, 1.0);
        a.push(1, 1, 1.0);
        let csr = Csr::from(&a);
        assert_eq!(spgemm_multiplies(&csr), 2.0 + 1.0 + 2.0);
    }

    #[test]
    fn multiplies_grow_with_density() {
        let sparse = Csr::from(&gen::erdos_renyi(512, 512, 2_000, 1));
        let dense = Csr::from(&gen::erdos_renyi(512, 512, 20_000, 2));
        assert!(spgemm_multiplies(&dense) > spgemm_multiplies(&sparse));
    }
}
