//! Calibrated RTX 3080 roofline model.
//!
//! The paper's GPU measurements (wall clock, CUDA 11.8) cover four kernel
//! families. All are bandwidth-bound on the matrices of Table IX, so each
//! is modeled as `launch/sync overhead + bytes / (peak_bw × efficiency)`:
//!
//! * **cuSPARSE CsrMV** — irregular gathers, short rows and per-call
//!   launch/synchronization overheads keep measured *wall-clock*
//!   efficiency far below peak on the paper's small-to-mid matrices.
//!   `spmv_eff` is THE calibration knob of this reproduction (see
//!   EXPERIMENTS.md): it is set so that the simulated pSyncPIM cube —
//!   whose per-element cost is fixed by its own microarchitecture (three
//!   row activations per 8-element batch) — lands at the paper's 1.96×
//!   geomean. All PIM-vs-PIM ratios (per-bank, 3×, SpaceA, INT8) emerge
//!   structurally and are not calibrated.
//! * **cuSPARSE csrsv2 (SpTRSV)** — level-set execution: one device-wide
//!   sync per level plus the level's traffic. Low per-level parallelism is
//!   what caps GPU SpTRSV (§III-C).
//! * **CUDA BLAS-1 vector ops** — streaming, high efficiency, but each op
//!   pays a kernel launch.
//! * **GraphBLAST operations** — the paper attributes its large graph-app
//!   wins to GraphBLAST's C++ template/functor overheads (§VII-E); each
//!   GraphBLAST op carries a large fixed cost on top of the streaming
//!   traffic.
//!
//! Calibration constants live in [`GpuModel::rtx3080`] and are documented
//! in EXPERIMENTS.md; shapes (who wins, by how much, where crossovers sit)
//! are the reproduction target, not absolute microseconds.

use psim_sparse::{LevelSchedule, Precision};
use serde::{Deserialize, Serialize};

/// Analytical GPU kernel-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Kernel launch + completion sync overhead in seconds.
    pub launch_s: f64,
    /// SpMV effective fraction of peak bandwidth.
    pub spmv_eff: f64,
    /// SpTRSV effective fraction of peak bandwidth within a level.
    pub sptrsv_eff: f64,
    /// Per-level synchronization cost of csrsv2 in seconds.
    pub level_sync_s: f64,
    /// Streaming (BLAS-1) effective fraction of peak bandwidth.
    pub stream_eff: f64,
    /// Fixed overhead per GraphBLAST operation in seconds (template/functor
    /// dispatch, buffer management).
    pub graphblast_op_s: f64,
    /// SpGEMM effective GFLOP/s (for the TC workload when run with
    /// GraphBLAST's mxm).
    pub spgemm_gflops: f64,
}

impl GpuModel {
    /// The RTX 3080 used in the paper (760 GB/s).
    #[must_use]
    pub fn rtx3080() -> Self {
        GpuModel {
            mem_bw: 760e9,
            launch_s: 12e-6,
            spmv_eff: 0.06,
            sptrsv_eff: 0.05,
            level_sync_s: 8e-6,
            stream_eff: 0.75,
            graphblast_op_s: 150e-6,
            spgemm_gflops: 15.0,
        }
    }

    /// Bytes one CSR SpMV moves: matrix (4 B col index + value per nnz +
    /// row pointers), output, and input-vector traffic with a cache-miss
    /// expansion factor for the irregular gathers.
    #[must_use]
    pub fn spmv_bytes(nnz: usize, nrows: usize, ncols: usize, p: Precision) -> f64 {
        let vb = p.bytes() as f64;
        nnz as f64 * (4.0 + vb) + nrows as f64 * (8.0 + vb) + ncols as f64 * vb * 1.5
    }

    /// cuSPARSE CsrMV wall-clock.
    #[must_use]
    pub fn spmv_seconds(&self, nnz: usize, nrows: usize, ncols: usize, p: Precision) -> f64 {
        // The GPU always runs FP64 storage for these suites (the paper
        // notes SpaceA/GPU do not exploit INT8) — precision still sizes
        // the data it must move if the caller asks for it.
        self.launch_s + Self::spmv_bytes(nnz, nrows, ncols, p) / (self.mem_bw * self.spmv_eff)
    }

    /// cuSPARSE csrsv2 wall-clock for a triangular solve with the given
    /// level schedule (row-reordered batching is cuSPARSE's own strategy,
    /// §I: "the cuSPARSE library uses only the row-reordering technique").
    #[must_use]
    pub fn sptrsv_seconds(&self, nnz: usize, n: usize, sched: &LevelSchedule, p: Precision) -> f64 {
        let vb = p.bytes() as f64;
        let total_bytes = nnz as f64 * (4.0 + vb) + 2.0 * n as f64 * vb;
        let levels = sched.num_levels() as f64;
        self.launch_s + levels * self.level_sync_s + total_bytes / (self.mem_bw * self.sptrsv_eff)
    }

    /// One CUDA BLAS-1 kernel over `streams` vectors of `n` elements
    /// (e.g. DAXPY reads 2 and writes 1 → `streams = 3`).
    #[must_use]
    pub fn vector_op_seconds(&self, n: usize, streams: usize, p: Precision) -> f64 {
        let bytes = n as f64 * streams as f64 * p.bytes() as f64;
        self.launch_s + bytes / (self.mem_bw * self.stream_eff)
    }

    /// One GraphBLAST operation over `streams` vectors of `n` elements —
    /// the template/functor overhead dominates for the paper's graphs.
    #[must_use]
    pub fn graphblast_op_seconds(&self, n: usize, streams: usize, p: Precision) -> f64 {
        let bytes = n as f64 * streams as f64 * p.bytes() as f64;
        self.graphblast_op_s + bytes / (self.mem_bw * self.stream_eff)
    }

    /// GraphBLAST SpMV (mxv): the CsrMV traffic plus the GraphBLAST fixed
    /// overhead.
    #[must_use]
    pub fn graphblast_spmv_seconds(
        &self,
        nnz: usize,
        nrows: usize,
        ncols: usize,
        p: Precision,
    ) -> f64 {
        self.graphblast_op_s
            + Self::spmv_bytes(nnz, nrows, ncols, p) / (self.mem_bw * self.spmv_eff)
    }

    /// SpGEMM (mxm) time from its multiply-accumulate count.
    #[must_use]
    pub fn spgemm_seconds(&self, flops: f64) -> f64 {
        self.launch_s + flops / (self.spgemm_gflops * 1e9)
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::rtx3080()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psim_sparse::triangular::{unit_triangular_from, Triangle};
    use psim_sparse::{gen, Precision};

    #[test]
    fn spmv_time_scales_with_nnz() {
        let g = GpuModel::rtx3080();
        let t1 = g.spmv_seconds(100_000, 10_000, 10_000, Precision::Fp64);
        let t2 = g.spmv_seconds(1_000_000, 10_000, 10_000, Precision::Fp64);
        assert!(t2 > 4.0 * t1, "{t1} vs {t2}");
    }

    #[test]
    fn tiny_kernels_are_launch_bound() {
        let g = GpuModel::rtx3080();
        let t = g.vector_op_seconds(1_000, 2, Precision::Fp64);
        assert!(t < 2.0 * g.launch_s);
        assert!(t >= g.launch_s);
    }

    #[test]
    fn sptrsv_pays_per_level() {
        let g = GpuModel::rtx3080();
        let a = gen::rmat_seeded(500, 5, 1, 3);
        let t = unit_triangular_from(&a, Triangle::Lower).unwrap();
        let sched = LevelSchedule::analyze(&t);
        let secs = g.sptrsv_seconds(t.nnz(), 500, &sched, Precision::Fp64);
        assert!(secs > sched.num_levels() as f64 * g.level_sync_s);
    }

    #[test]
    fn graphblast_overhead_dominates_small_vectors() {
        let g = GpuModel::rtx3080();
        let cuda = g.vector_op_seconds(100_000, 3, Precision::Fp64);
        let gb = g.graphblast_op_seconds(100_000, 3, Precision::Fp64);
        assert!(gb > 5.0 * cuda, "GraphBLAST {gb} vs CUDA {cuda}");
    }

    #[test]
    fn spmv_efficiency_well_below_peak() {
        let g = GpuModel::rtx3080();
        // Effective SpMV bandwidth must be spmv_eff of peak.
        let nnz = 10_000_000usize;
        let bytes = GpuModel::spmv_bytes(nnz, 1_000_000, 1_000_000, Precision::Fp64);
        let t = g.spmv_seconds(nnz, 1_000_000, 1_000_000, Precision::Fp64);
        let eff = bytes / t / g.mem_bw;
        assert!(eff < 0.1 && eff > 0.03, "eff = {eff}");
    }
}
