//! # pSyncPIM
//!
//! A full-system reproduction of *"pSyncPIM: Partially Synchronous
//! Execution of Sparse Matrix Operations for All-Bank PIM Architectures"*
//! (ISCA 2024): an HBM2 all-bank processing-in-memory architecture that
//! keeps the standard JEDEC host interface while running irregular sparse
//! kernels through predicated, conditionally-terminating lockstep
//! execution.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`sparse`] — matrix formats, generators, decompositions, the SpMV
//!   compression/distribution policy and the Table IX synthetic suite,
//! * [`dram`] — the cycle-level HBM2 channel/bank/timing/power simulator,
//! * [`core`] — the PIM ISA, per-bank processing units and the partially
//!   synchronous execution engine,
//! * [`kernels`] — every Table III kernel in PIM assembly with host
//!   orchestration,
//! * [`baselines`] — calibrated GPU/SpaceA/SpGEMM-accelerator models,
//! * [`apps`] — the seven Table II applications over a device abstraction,
//! * [`tune`] — the per-matrix format & partitioning autotuner
//!   (DESIGN.md §17).
//!
//! # Quickstart
//!
//! ```
//! use psyncpim::kernels::{PimDevice, SpmvPim};
//! use psyncpim::sparse::{gen, Precision};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = gen::rmat(256, 4, 1);
//! let x = vec![1.0; 256];
//! let result = SpmvPim::new(PimDevice::tiny(1), Precision::Fp64).run(&a, &x)?;
//! assert_eq!(result.y.len(), 256);
//! println!("SpMV took {:.3} us on PIM", result.run.total_s() * 1e6);
//! # Ok(())
//! # }
//! ```

pub use psim_apps as apps;
pub use psim_baselines as baselines;
pub use psim_dram as dram;
pub use psim_kernels as kernels;
pub use psim_sparse as sparse;
pub use psim_tune as tune;
pub use psyncpim_core as core;
