#!/usr/bin/env bash
# Local CI gate: build, test, lint, format. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> psim-check (protocol + kernel-semantics validation gate)"
cargo run -q --release -p psim-bench --bin psim_check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
