#!/usr/bin/env bash
# Local CI gate: build, test, lint, format. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> psim-lint (static program verification gate)"
cargo run -q --release -p psim-bench --bin psim_lint
if base=$(git show HEAD:results/psim_lint.json 2>/dev/null); then
  if [ "$base" = "$(cat results/psim_lint.json)" ]; then
    echo "lint delta: results/psim_lint.json unchanged vs HEAD"
  else
    echo "lint delta: results/psim_lint.json CHANGED vs HEAD:"
    diff <(printf '%s\n' "$base" | tr ',' '\n') <(tr ',' '\n' < results/psim_lint.json) | head -40 || true
  fi
else
  echo "lint delta: no committed results/psim_lint.json at HEAD (first run)"
fi

echo "==> psim-model (concurrency model-check gate, scaled down; writes results/psim_model.json)"
cargo run -q --release -p psim-bench --bin psim_model -- --budget 4000
test -s results/psim_model.json || { echo "missing results/psim_model.json" >&2; exit 1; }

echo "==> sched test suite under the instrumented sync backend (PSIM_SYNC=instrument)"
PSIM_SYNC=instrument cargo test -q -p psim-sched

echo "==> psim-check (protocol + kernel-semantics validation gate)"
cargo run -q --release -p psim-bench --bin psim_check

echo "==> psim-trace (cycle-attribution conservation gate; writes results/BENCH_trace.json)"
cargo run -q --release -p psim-bench --bin psim_trace

echo "==> psim-fastpath (tick/event equivalence + speedup floor + cost-model calibration; writes results/BENCH_fastpath.json)"
cargo run -q --release -p psim-bench --bin psim_fastpath
test -s results/BENCH_fastpath.json || { echo "missing results/BENCH_fastpath.json" >&2; exit 1; }

echo "==> psim-soak (service-mode fusion/steal soak, scaled down; writes results/BENCH_soak.json)"
cargo run -q --release -p psim-bench --bin soak_sched -- --jobs 30000 --gate
test -s results/BENCH_soak.json || { echo "missing results/BENCH_soak.json" >&2; exit 1; }

echo "==> psim-autotune (layout autotuner gate: oracle both tiers, geomean win, rank agreement; writes results/BENCH_autotune.json)"
cargo run -q --release -p psim-bench --bin ablation_autotune
test -s results/BENCH_autotune.json || { echo "missing results/BENCH_autotune.json" >&2; exit 1; }

echo "==> golden traces + protocol replay under the event engine tier (PSIM_ENGINE=event)"
PSIM_ENGINE=event cargo test -q -p psyncpim --test golden_trace
PSIM_ENGINE=event cargo run -q --release -p psim-bench --bin psim_check

echo "==> cargo clippy --workspace --all-targets (deny warnings + pedantic subset)"
cargo clippy --workspace --all-targets -- -D warnings \
  -D clippy::semicolon_if_nothing_returned \
  -D clippy::uninlined_format_args \
  -D clippy::redundant_closure_for_method_calls \
  -D clippy::explicit_iter_loop \
  -D clippy::manual_let_else \
  -D clippy::needless_pass_by_value \
  -D clippy::items_after_statements

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
