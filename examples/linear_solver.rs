//! Preconditioned linear solvers on pSyncPIM: factor A ≈ L·D·U with the
//! host-side ILDU (divisions stay off the PIM's critical path, §VI-D),
//! then run P-CG with the triangular solves executing on the simulated
//! device via the recursive block algorithm.
//!
//! ```sh
//! cargo run --release --example linear_solver
//! ```

use psyncpim::apps::cg::pcg;
use psyncpim::apps::{GpuRuntime, GpuStack, PimRuntime};
use psyncpim::baselines::GpuModel;
use psyncpim::kernels::{PimDevice, SptrsvPim};
use psyncpim::sparse::level::reorder_to_lower;
use psyncpim::sparse::triangular::{unit_triangular_from, Triangle};
use psyncpim::sparse::{gen, ildu, LevelSchedule, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An SPD system like the paper's PCG operands.
    let n = 400;
    let base = gen::banded_fem(n, 12, 4, 3);
    let a = ildu::make_spd(&base);
    let x_true = gen::dense_vector(n, 5);
    let b = a.spmv(&x_true);
    println!("system: {n} unknowns, {} non-zeros", a.nnz());

    // --- One SpTRSV kernel in isolation -------------------------------
    let t = unit_triangular_from(&a, Triangle::Lower)?;
    let sched = LevelSchedule::analyze(&t);
    println!(
        "\nlower triangle: {} nnz, {} levels (avg parallelism {:.1})",
        t.nnz(),
        sched.num_levels(),
        sched.avg_parallelism()
    );
    let (reordered, perm) = reorder_to_lower(&t);
    let rhs = gen::dense_vector(n, 9);
    let permuted_rhs: Vec<f64> = perm.iter().map(|&old| rhs[old]).collect();
    let solver = SptrsvPim::new(PimDevice::tiny(2));
    let res = solver.run(&reordered, &permuted_rhs)?;
    println!(
        "SpTRSV on PIM: {:.3} us across {} level batches ({} block solves, {} SpMV updates)",
        res.run.total_s() * 1e6,
        res.level_batches,
        res.solve_steps,
        res.update_steps
    );

    // --- Full P-CG on both devices ------------------------------------
    println!("\nP-CG (ILDU preconditioner):");
    let mut gpu = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::Cuda);
    let g = pcg(&mut gpu, &a, &b, 1e-10, 100);
    println!(
        "  GPU model:  {} iterations, residual {:.2e}, {:.3e} s (sptrsv {:.0}%)",
        g.run.iterations,
        g.residual,
        g.run.total_s(),
        g.run.breakdown.fractions()[1] * 100.0
    );
    let mut pim = PimRuntime::new(PimDevice::tiny(2), Precision::Fp64);
    let p = pcg(&mut pim, &a, &b, 1e-10, 100);
    println!(
        "  pSyncPIM:   {} iterations, residual {:.2e}, {:.3e} s (sptrsv {:.0}%)",
        p.run.iterations,
        p.residual,
        p.run.total_s(),
        p.run.breakdown.fractions()[1] * 100.0
    );
    let err =
        p.x.iter()
            .zip(&x_true)
            .map(|(g, w)| (g - w).abs())
            .fold(0.0f64, f64::max);
    println!("  max |x - x_true| on PIM = {err:.2e}");
    assert!(p.converged && g.converged);
    Ok(())
}
