//! Hand-written PIM assembly: author a kernel in the pSyncPIM ISA (paper
//! §IV, Figure 5), assemble it, inspect its encoding and host command
//! schedule, and run it on one processing unit against bank memory.
//!
//! ```sh
//! cargo run --release --example pim_assembly
//! ```

use psyncpim::core::isa::{assemble, disassemble};
use psyncpim::core::memory::BankMemory;
use psyncpim::core::ProcessingUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-written kernel: y <- 3*x + y over 8 bursts (DAXPY, Table III).
    let asm = r"
; DAXPY: alpha preloaded in SRF by the host
DMOV DRF0, BANK, FP64     ; slot 0: load x chunk
DMOV DRF1, BANK, FP64     ; slot 1: load y chunk
SDV  DRF0, DRF0, MUL, FP64 ; x *= alpha
DVDV DRF1, DRF0, DRF1, ADD, FP64
DMOV BANK, DRF1, FP64     ; slot 4: store y chunk
JUMP 0, 1, 7              ; 8 chunks total
EXIT
";
    let program = assemble(asm)?;
    println!("assembled {} instructions:", program.len());
    for (i, word) in program.encode()?.iter().enumerate() {
        println!("  [{i:2}] {word:#010x}");
    }
    println!("\ncanonical disassembly:\n{}", disassemble(&program));
    println!(
        "host command schedule per run: {:?} (slot indices)",
        program.command_schedule()?
    );

    // Execute on a single processing unit.
    let n = 32; // 8 chunks of 4 FP64 lanes
    let mut mem = BankMemory::new(1024);
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let y: Vec<f64> = (0..n).map(|i| 100.0 + i as f64).collect();
    let rx = mem.alloc("x", 8, x.clone());
    let ry = mem.alloc("y", 8, y.clone());
    let mut pu = ProcessingUnit::new();
    pu.load_kernel(
        program.clone(),
        vec![Some(rx), Some(ry), None, None, Some(ry), None, None],
    )?;
    pu.set_srf(3.0);
    for &slot in &program.command_schedule()? {
        pu.on_command(slot, &mut mem);
    }
    pu.run_free(&mut mem);
    assert!(pu.exited());

    let got = mem.region(ry).data();
    let want: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| 3.0 * xi + yi).collect();
    assert_eq!(got, want.as_slice());
    println!(
        "executed on one PU: y[0..4] = {:?} (expected {:?})",
        &got[..4],
        &want[..4]
    );
    println!(
        "stats: {} instructions, {} memory ops, {} PU cycles busy",
        pu.stats().instructions,
        pu.stats().mem_ops,
        pu.stats().busy_cycles
    );
    Ok(())
}
