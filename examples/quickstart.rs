//! Quickstart: run SpMV on the simulated pSyncPIM device and compare the
//! all-bank (pSyncPIM), per-bank and GPU-model execution of the same
//! matrix.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use psyncpim::baselines::GpuModel;
use psyncpim::kernels::{PimDevice, SpmvPim};
use psyncpim::sparse::{gen, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power-law graph adjacency matrix, like the SNAP graphs the paper
    // evaluates (Table IX).
    let n = 4096;
    let a = gen::rmat(n, 8, 42);
    let x = gen::dense_vector(n, 7);
    println!("matrix: {n} x {n}, {} non-zeros", a.nnz());

    // Reference result on the host.
    let want = a.spmv(&x);

    // pSyncPIM: 256 banks in lockstep, partially synchronous.
    let psync = SpmvPim::new(PimDevice::psync_1x(), Precision::Fp64).run(&a, &x)?;
    let max_err = psync
        .y
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    println!(
        "pSyncPIM (all-bank): {:>9.3} us   max |err| = {max_err:.2e}",
        psync.run.total_s() * 1e6
    );
    println!(
        "  distribution: {} submatrices over {} banks, imbalance {:.2}, {} waves",
        psync.stats.num_submatrices,
        psync.stats.banks_used,
        psync.stats.imbalance(),
        psync.waves
    );

    // The per-bank baseline: same silicon, host drives one bank at a time.
    let perbank = SpmvPim::new(PimDevice::per_bank(), Precision::Fp64).run(&a, &x)?;
    println!(
        "per-bank baseline:   {:>9.3} us   ({:.2}x slower)",
        perbank.run.total_s() * 1e6,
        perbank.run.total_s() / psync.run.total_s()
    );

    // The calibrated RTX 3080 model for context.
    let gpu = GpuModel::rtx3080().spmv_seconds(a.nnz(), n, n, Precision::Fp64);
    println!(
        "GPU (cuSPARSE model):{:>9.3} us   (pSyncPIM speedup {:.2}x)",
        gpu * 1e6,
        gpu / psync.run.total_s()
    );
    Ok(())
}
