//! Bring your own matrix: load a MatrixMarket file (SuiteSparse/SNAP
//! format) and run it through the full pSyncPIM pipeline — partitioning
//! statistics, SpMV on the simulated device, and the baseline comparison.
//!
//! ```sh
//! cargo run --release --example custom_matrix [-- path/to/matrix.mtx]
//! ```
//!
//! Without an argument the example writes a small demo `.mtx` to a
//! temporary file first, so it is self-contained.

use psyncpim::baselines::GpuModel;
use psyncpim::kernels::{PimDevice, SpmvPim};
use psyncpim::sparse::{gen, mmio, MatrixStats, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Self-contained demo: serialize a generated matrix and reload
            // it through the same loader a real SuiteSparse file would use.
            let demo = gen::banded_fem(2000, 24, 6, 99);
            let path = std::env::temp_dir().join("psyncpim_demo.mtx");
            mmio::write_file(&demo, &path)?;
            println!("(no path given; wrote a demo matrix to {})", path.display());
            path
        }
    };

    let a = mmio::read_file(&path)?;
    println!(
        "loaded {}: {} x {}, {} non-zeros, density {:.2e}",
        path.display(),
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.density()
    );

    println!("structure: {}", MatrixStats::analyze(&a));

    let x = gen::dense_vector(a.ncols(), 1);
    let runner = SpmvPim::new(PimDevice::psync_1x(), Precision::Fp64);
    let res = runner.run(&a, &x)?;
    let stats = res.stats;
    println!("\ndistribution (paper §V):");
    println!("  submatrices          {}", stats.num_submatrices);
    println!("  banks used           {} / 256", stats.banks_used);
    println!("  load imbalance       {:.2}", stats.imbalance());
    println!(
        "  input replication    {} elements",
        stats.input_replication
    );
    println!(
        "  external traffic     {:.1} KiB",
        stats.external_bytes as f64 / 1024.0
    );

    println!("\nexecution:");
    println!("  waves                {}", res.waves);
    println!("  DRAM commands        {}", res.run.commands);
    println!("  kernel time          {:.3} us", res.run.kernel_s * 1e6);
    println!("  host/external time   {:.3} us", res.run.host_s * 1e6);
    println!("  energy               {:.3} uJ", res.run.energy_j * 1e6);

    // Sanity: match the host reference.
    let want = a.spmv(&x);
    let max_err = res
        .y
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    println!("  max |err| vs host    {max_err:.2e}");

    let gpu = GpuModel::rtx3080().spmv_seconds(a.nnz(), a.nrows(), a.ncols(), Precision::Fp64);
    println!(
        "\nGPU model would take {:.3} us -> pSyncPIM speedup {:.2}x",
        gpu * 1e6,
        gpu / res.run.total_s()
    );
    Ok(())
}
