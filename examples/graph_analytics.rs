//! Graph analytics on pSyncPIM: run BFS, PageRank, connected components
//! and SSSP on the same graph, on both the PIM device and the GPU model,
//! and print the per-kernel time breakdown (the paper's Figures 2/11/12
//! story in miniature).
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use psyncpim::apps::{bfs, cc, pagerank, sssp};
use psyncpim::apps::{GpuRuntime, GpuStack, PimRuntime};
use psyncpim::baselines::GpuModel;
use psyncpim::kernels::PimDevice;
use psyncpim::sparse::{gen, Precision};

fn main() {
    let n = 600;
    let g = gen::rmat(n, 6, 11);
    println!("graph: {n} vertices, {} edges\n", g.nnz());
    println!(
        "{:<10} {:>12} {:>12} {:>9}   breakdown (pim: spmv/vector)",
        "app", "GPU s", "PIM s", "speedup"
    );

    for app in ["BFS", "PR", "CC", "SSSP"] {
        let mut gpu = GpuRuntime::new(GpuModel::rtx3080(), GpuStack::GraphBlast);
        let mut pim = PimRuntime::new(PimDevice::tiny(4), Precision::Fp64);
        let (gpu_run, pim_run) = match app {
            "BFS" => {
                let (l1, r1) = bfs::bfs(&mut gpu, &g, 0);
                let (l2, r2) = bfs::bfs(&mut pim, &g, 0);
                assert_eq!(l1, l2, "both devices must agree");
                (r1, r2)
            }
            "PR" => {
                let (p1, r1) = pagerank::pagerank(&mut gpu, &g, 1e-7, 30);
                let (p2, r2) = pagerank::pagerank(&mut pim, &g, 1e-7, 30);
                let drift = p1
                    .iter()
                    .zip(&p2)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(drift < 1e-6, "rank drift {drift}");
                (r1, r2)
            }
            "CC" => {
                let (c1, r1) = cc::connected_components(&mut gpu, &g);
                let (c2, r2) = cc::connected_components(&mut pim, &g);
                assert_eq!(c1, c2);
                (r1, r2)
            }
            "SSSP" => {
                let (d1, r1) = sssp::sssp(&mut gpu, &g, 0);
                let (d2, r2) = sssp::sssp(&mut pim, &g, 0);
                let both_match = d1
                    .iter()
                    .zip(&d2)
                    .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9);
                assert!(both_match);
                (r1, r2)
            }
            _ => unreachable!(),
        };
        let b = pim_run.breakdown;
        println!(
            "{:<10} {:>12.3e} {:>12.3e} {:>8.1}x   {:>4.0}% / {:>4.0}%",
            app,
            gpu_run.total_s(),
            pim_run.total_s(),
            gpu_run.total_s() / pim_run.total_s(),
            b.fractions()[0] * 100.0,
            b.fractions()[2] * 100.0,
        );
    }
    println!("\n(PIM device here is a scaled-down test cube; run the fig11 binary for paper-scale speedups)");
}
