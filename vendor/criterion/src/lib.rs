//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock harness: each benchmark body is warmed up once, then
//! timed over a fixed number of iterations and reported as mean
//! time/iteration on stdout. No statistics, plotting or baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    println!(
        "bench {name:<48} {:>12.3} us/iter ({iters} iters)",
        per_iter * 1e6
    );
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    prefix: String,
    iters: u64,
}

impl BenchmarkGroup {
    /// Set the per-benchmark iteration count (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Run `f` as benchmark `prefix/id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&format!("{}/{}", self.prefix, id), self.iters, f);
    }

    /// Run `f` with `input` as benchmark `prefix/id`.
    // By-value `id` mirrors the real criterion API.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) {
        run_one(&format!("{}/{}", self.prefix, id), self.iters, |b| {
            f(b, input);
        });
    }

    /// Finish the group (reporting happens per-benchmark; nothing to do).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.into(),
            iters: self.iters,
        }
    }

    /// Run `f` as a stand-alone named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.iters, f);
        self
    }

    /// Run `f` with `input` as a stand-alone named benchmark.
    // By-value `id` mirrors the real criterion API.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.iters, |b| f(b, input));
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }
}
