//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the pieces the workspace uses: [`Rng::gen`], [`Rng::gen_range`]
//! over integer/float ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — high-quality and deterministic, though its streams differ
//! from upstream `StdRng` (ChaCha12); all workspace uses derive test inputs
//! whose *properties*, not exact values, matter.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full domain; `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators seedable from integers.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (vendored; upstream uses
    /// ChaCha12 — streams differ, quality is comparable for test data).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            StdRng {
                s: [
                    Self::splitmix(&mut st),
                    Self::splitmix(&mut st),
                    Self::splitmix(&mut st),
                    Self::splitmix(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&j));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
