//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` crate without `syn`/`quote` (unavailable offline): the
//! item is parsed directly from the raw [`TokenStream`]. Supported shapes —
//! the ones the workspace uses — are non-generic structs (named, tuple,
//! unit) and non-generic enums (unit, tuple and struct variants), encoded
//! with serde's conventions: structs as objects, newtype structs
//! transparently, enums externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a derive target's fields.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed derive target.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Split a token list into top-level comma-separated chunks.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                out.push(std::mem::take(&mut cur));
            }
            other => cur.push(other.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.into_iter().filter(|c| !c.is_empty()).collect()
}

/// Drop leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn strip_attrs_and_vis(mut tokens: &[TokenTree]) -> &[TokenTree] {
    loop {
        match tokens {
            [TokenTree::Punct(p), TokenTree::Group(_), rest @ ..] if p.as_char() == '#' => {
                tokens = rest;
            }
            [TokenTree::Ident(i), TokenTree::Group(g), rest @ ..]
                if i.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                tokens = rest;
            }
            [TokenTree::Ident(i), rest @ ..] if i.to_string() == "pub" => {
                tokens = rest;
            }
            _ => return tokens,
        }
    }
}

/// Field names of a named-fields body (`{ a: T, b: U }`).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_commas(tokens)
        .iter()
        .filter_map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            match chunk {
                [TokenTree::Ident(name), ..] => Some(name.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Parse the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility ahead of the struct/enum keyword.
    let is_enum = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "struct" => break false,
            TokenTree::Ident(id) if id.to_string() == "enum" => break true,
            _ => i += 1,
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "vendored serde derive does not support generic type `{name}`"
        );
    }
    if is_enum {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde derive: expected enum body, found {other}"),
        };
        let body: Vec<TokenTree> = body.into_iter().collect();
        let variants = split_commas(&body)
            .iter()
            .filter_map(|chunk| {
                let chunk = strip_attrs_and_vis(chunk);
                let (name, rest) = match chunk {
                    [TokenTree::Ident(n), rest @ ..] => (n.to_string(), rest),
                    _ => return None,
                };
                let fields = match rest.first() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Named(parse_named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(split_commas(&inner).len())
                    }
                    _ => Fields::Unit,
                };
                Some(Variant { name, fields })
            })
            .collect();
        Item::Enum { name, variants }
    } else {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_commas(&inner).len())
            }
            _ => Fields::Unit,
        };
        Item::Struct { name, fields }
    }
}

/// Emit statements serializing named fields bound as `__f_<name>` (enum
/// variants) or reachable as `&self.<name>` (structs).
fn gen_named_body(out: &mut String, fields: &[String], accessor: impl Fn(&str) -> String) {
    out.push_str("out.push('{');\n");
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            out.push_str("out.push(',');\n");
        }
        out.push_str(&format!("::serde::json::write_key(out, \"{f}\");\n"));
        out.push_str(&format!(
            "::serde::Serialize::serialize_json({}, out);\n",
            accessor(f)
        ));
    }
    out.push_str("out.push('}');\n");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut body = String::new();
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    match item {
        Item::Struct { fields, .. } => match fields {
            Fields::Named(fs) => gen_named_body(&mut body, &fs, |f| format!("&self.{f}")),
            Fields::Tuple(1) => {
                // Newtype structs serialize transparently, as in serde.
                body.push_str("::serde::Serialize::serialize_json(&self.0, out);\n");
            }
            Fields::Tuple(n) => {
                body.push_str("out.push('[');\n");
                for k in 0..n {
                    if k > 0 {
                        body.push_str("out.push(',');\n");
                    }
                    body.push_str(&format!(
                        "::serde::Serialize::serialize_json(&self.{k}, out);\n"
                    ));
                }
                body.push_str("out.push(']');\n");
            }
            Fields::Unit => body.push_str("out.push_str(\"null\");\n"),
        },
        Item::Enum { variants, .. } => {
            body.push_str("match self {\n");
            for v in &variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        body.push_str(&format!(
                            "{name}::{vname} => ::serde::json::write_str(out, \"{vname}\"),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        body.push_str(&format!("{name}::{vname}({}) => {{\n", binders.join(", ")));
                        body.push_str("out.push('{');\n");
                        body.push_str(&format!("::serde::json::write_key(out, \"{vname}\");\n"));
                        if *n == 1 {
                            body.push_str("::serde::Serialize::serialize_json(__f0, out);\n");
                        } else {
                            body.push_str("out.push('[');\n");
                            for (k, b) in binders.iter().enumerate() {
                                if k > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::serialize_json({b}, out);\n"
                                ));
                            }
                            body.push_str("out.push(']');\n");
                        }
                        body.push_str("out.push('}');\n}\n");
                    }
                    Fields::Named(fs) => {
                        let binders = fs.join(", ");
                        body.push_str(&format!("{name}::{vname} {{ {binders} }} => {{\n"));
                        body.push_str("out.push('{');\n");
                        body.push_str(&format!("::serde::json::write_key(out, \"{vname}\");\n"));
                        gen_named_body(&mut body, fs, std::string::ToString::to_string);
                        body.push_str("out.push('}');\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{body}}}\n}}\n"
    );
    out.parse().expect("serde derive generated invalid code")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    format!("impl ::serde::Deserialize for {name} {{}}\n")
        .parse()
        .expect("serde derive generated invalid code")
}
