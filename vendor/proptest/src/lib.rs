//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API the workspace uses — the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range / [`Just`] /
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`prop_oneof!`], the [`proptest!`] macro with `proptest_config`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name) so failures reproduce across
//! runs. Unlike upstream there is **no shrinking**: a failing case panics
//! with the case number immediately.

use std::ops::Range;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from a test's name so every run replays the same cases.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sample space");
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (no shrinking in this vendored version).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chain a dependent strategy off generated values.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (used by [`prop_oneof!`]).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Vectors of `element`-generated values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice from a fixed list.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over an empty list");
            Select { options }
        }

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }
}

/// Runner configuration and plumbing mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Number of random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy, TestRng,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` deterministic random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let case_desc = format!(
                    "{} case {}/{}", stringify!($name), __case + 1, config.cases
                );
                let _ = &case_desc;
                $body
            }
        }
    )*};
}

/// `assert!` that names the failing property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// `assert_eq!` that names the failing property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// `assert_ne!` that names the failing property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_select_sample_in_domain() {
        let mut rng = TestRng::deterministic("t");
        for _ in 0..200 {
            let v = (3u8..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let s = prop::sample::select(vec!["a", "b"]).sample(&mut rng);
            assert!(s == "a" || s == "b");
            let xs = prop::collection::vec(0u32..5, 1..4).sample(&mut rng);
            assert!((1..4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("c");
        let s = (1usize..5)
            .prop_flat_map(|n| prop::collection::vec(0u32..10, n..n + 1).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
        let u = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
