//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of serde the workspace actually uses: the
//! [`Serialize`] / [`Deserialize`] traits, derivable through the companion
//! `serde_derive` proc-macro (re-exported under the `derive` feature), and
//! a concrete JSON backend ([`json`]) so reports and service stats can be
//! serialized to a machine-readable form.
//!
//! Design notes:
//!
//! * [`Serialize`] is a *direct-to-JSON* trait rather than serde's
//!   visitor architecture — every consumer in this workspace serializes to
//!   JSON (TSV/report tooling), and the flat design keeps the vendored
//!   derive macro dependency-free (no `syn`/`quote` in the image).
//! * [`Deserialize`] is a marker trait: nothing in the workspace parses
//!   serialized data back, but the derives keep compiling unchanged.
//! * Output is deterministic: struct fields serialize in declaration
//!   order, floats use Rust's shortest round-trip formatting, and
//!   non-finite floats map to `null` (JSON has no NaN/Inf).

/// Serialize a value to JSON.
///
/// Implemented for primitives/collections here and derived for workspace
/// types by `#[derive(Serialize)]`.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);

    /// The JSON encoding of `self` as a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.serialize_json(&mut s);
        s
    }
}

/// Marker for deserializable types (no runtime behaviour; the workspace
/// never parses serialized data back).
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Helpers used by the derive macro and hand-written impls.
pub mod json {
    use super::Serialize;

    /// Append a JSON string literal (with escaping) to `out`.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Append `"key":` to `out`.
    pub fn write_key(out: &mut String, key: &str) {
        write_str(out, key);
        out.push(':');
    }

    /// Append a finite-checked JSON number for `v` (`null` for NaN/Inf).
    pub fn write_f64(out: &mut String, v: f64) {
        if v.is_finite() {
            // `{:?}` is Rust's shortest round-trip float formatting.
            out.push_str(&format!("{v:?}"));
        } else {
            out.push_str("null");
        }
    }

    /// Serialize any `Serialize` slice as a JSON array.
    pub fn write_seq<T: Serialize>(out: &mut String, items: &[T]) {
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        json::write_f64(out, *self);
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        json::write_f64(out, f64::from(*self));
    }
}
impl Deserialize for f32 {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        json::write_str(out, &self.to_string());
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_str(out, self);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        json::write_seq(out, self);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        json::write_seq(out, self);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        json::write_seq(out, self);
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3u64.to_json(), "3");
        assert_eq!((-5i32).to_json(), "-5");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b".to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(1u8).to_json(), "1");
        assert_eq!(Option::<u8>::None.to_json(), "null");
        assert_eq!((1u8, "x").to_json(), "[1,\"x\"]");
        assert_eq!([1.0f64, 2.0].to_json(), "[1.0,2.0]");
    }
}
